// Package conc provides the thread-safe, linearizable concurrent data
// structures that Proust wraps into transactional objects:
//
//   - HashMap: a striped hash map with lock-free reads and epoch-pooled
//     chain nodes (the ConcurrentHashMap stand-in used by the paper's
//     LazyHashMap).
//   - Ctrie: a concurrent hash-trie with constant-time snapshots (the Scala
//     TrieMap stand-in used by the paper's TrieMap/LazyTrieMap).
//   - SkipListMap: an ordered concurrent map.
//   - PQueue: a lock-based binary heap with lazy-deletion wrappers (the
//     PriorityBlockingQueue stand-in of the paper's Figure 3).
//   - COWHeap: a copy-on-write persistent heap with O(1) snapshots (the
//     paper's "new base copy-on-write data structure" for
//     LazyPriorityQueue).
//
// Everything in this package is non-transactional: each individual operation
// is linearizable and safe for concurrent use, but sequences of operations
// are not atomic. The Proust wrappers in internal/core add transactionality.
package conc

import (
	"sync"
	"sync/atomic"
)

const defaultStripes = 64

// Hasher maps a key to a 64-bit hash. Keys equal under == must hash equally.
type Hasher[K comparable] func(K) uint64

// Per-stripe chain-node freelist cap and initial bucket count. Buckets double
// when a stripe's population exceeds hmLoadFactor entries per bucket.
const (
	hmNodeCap        = 512
	hmInitialBuckets = 8
	hmLoadFactor     = 4
)

// hmNode is one immutable-after-publication chain entry. Nodes are served
// from the map's EpochPool: key, hash and val are written only before the
// node is published (a bucket-head or predecessor next store), and never
// again until the node has been unlinked and a full grace period has passed —
// so lock-free readers may dereference them with plain loads.
type hmNode[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	next atomic.Pointer[hmNode[K, V]]
}

// hmTable is one stripe's bucket array; replaced wholesale on resize so
// readers always traverse an internally consistent table.
type hmTable[K comparable, V any] struct {
	buckets []atomic.Pointer[hmNode[K, V]]
}

type hashStripe[K comparable, V any] struct {
	mu    sync.Mutex // writers only; readers are lock-free
	table atomic.Pointer[hmTable[K, V]]
	count atomic.Int64
}

// HashMap is a thread-safe hash map using lock striping for writers and
// epoch-protected lock-free reads: the table is split into fixed stripes,
// each guarded by its own mutex, so mutations on different stripes proceed
// in parallel, while Get/Contains/Range never take a lock at all.
//
// Since PR 10 the stripes are chained-bucket tables over nodes served from a
// conc.EpochPool (the facility the Ctrie and skiplist already reclaim
// through): an update replaces the key's node, a remove unlinks it, and the
// displaced node is retired into the pool's rotating epoch bins — a reader
// that raced past the unlink is still inside a pinned section, so the node
// cannot be recycled under it. In steady state (stable key population)
// mutations allocate nothing: every node comes off the handle's freelist.
type HashMap[K comparable, V any] struct {
	hash       Hasher[K]
	pool       *EpochPool[hmNode[K, V]]
	stripes    []hashStripe[K, V]
	stripeBits uint
}

// NewHashMap creates a HashMap with the given hasher and default striping.
func NewHashMap[K comparable, V any](hash Hasher[K]) *HashMap[K, V] {
	return NewHashMapStripes[K, V](hash, defaultStripes)
}

// NewHashMapStripes creates a HashMap with n stripes (rounded up to a power
// of two).
func NewHashMapStripes[K comparable, V any](hash Hasher[K], n int) *HashMap[K, V] {
	size := 1
	bits := uint(0)
	for size < n {
		size <<= 1
		bits++
	}
	h := &HashMap[K, V]{
		hash: hash,
		pool: NewEpochPool(hmNodeCap, func(n *hmNode[K, V]) {
			// Clear pointerful fields so freelist residency pins neither
			// displaced chain suffixes nor caller keys/values.
			var zk K
			var zv V
			n.hash = 0
			n.key = zk
			n.val = zv
			n.next.Store(nil)
		}),
		stripes:    make([]hashStripe[K, V], size),
		stripeBits: bits,
	}
	for i := range h.stripes {
		t := &hmTable[K, V]{buckets: make([]atomic.Pointer[hmNode[K, V]], hmInitialBuckets)}
		h.stripes[i].table.Store(t)
	}
	return h
}

func (h *HashMap[K, V]) stripe(hash uint64) *hashStripe[K, V] {
	return &h.stripes[hash&uint64(len(h.stripes)-1)]
}

// bucketIdx selects a bucket from the hash bits above the stripe selector,
// so chains stay balanced even when the stripe count and bucket count share
// low bits.
func (h *HashMap[K, V]) bucketIdx(hash uint64, nbuckets int) uint64 {
	return (hash >> h.stripeBits) & uint64(nbuckets-1)
}

// Get returns the value for k and whether it is present. Lock-free: the
// traversal runs inside an epoch-pinned section, so nodes unlinked by a
// concurrent writer remain intact until the read completes.
func (h *HashMap[K, V]) Get(k K) (V, bool) {
	hv := h.hash(k)
	s := h.stripe(hv)
	hd := h.pool.Get()
	hd.Pin()
	t := s.table.Load()
	n := t.buckets[h.bucketIdx(hv, len(t.buckets))].Load()
	for n != nil {
		if n.hash == hv && n.key == k {
			v := n.val
			hd.Unpin()
			h.pool.Put(hd)
			return v, true
		}
		n = n.next.Load()
	}
	hd.Unpin()
	h.pool.Put(hd)
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (h *HashMap[K, V]) Contains(k K) bool {
	_, ok := h.Get(k)
	return ok
}

// findLocked walks k's chain under the stripe lock, returning the node and
// the link (bucket head or predecessor next) that publishes it.
func (h *HashMap[K, V]) findLocked(t *hmTable[K, V], hv uint64, k K) (*atomic.Pointer[hmNode[K, V]], *hmNode[K, V]) {
	link := &t.buckets[h.bucketIdx(hv, len(t.buckets))]
	for {
		n := link.Load()
		if n == nil {
			return link, nil
		}
		if n.hash == hv && n.key == k {
			return link, n
		}
		link = &n.next
	}
}

// insertLocked publishes a fresh node for (k,v) at the head link, replacing
// old (already found at that link) when non-nil.
func (h *HashMap[K, V]) insertLocked(hd *EpochHandle[hmNode[K, V]], s *hashStripe[K, V],
	link *atomic.Pointer[hmNode[K, V]], old *hmNode[K, V], hv uint64, k K, v V) {
	nn := hd.Alloc()
	nn.hash = hv
	nn.key = k
	nn.val = v
	if old != nil {
		// Replace in place: the new node adopts the old node's suffix, so
		// readers mid-chain see either the old or the new binding.
		nn.next.Store(old.next.Load())
		link.Store(nn)
		hd.Retire(old)
		return
	}
	nn.next.Store(link.Load())
	link.Store(nn)
	s.count.Add(1)
	h.maybeGrowLocked(hd, s)
}

// removeLocked unlinks n (published at link) and retires it.
func (h *HashMap[K, V]) removeLocked(hd *EpochHandle[hmNode[K, V]], s *hashStripe[K, V],
	link *atomic.Pointer[hmNode[K, V]], n *hmNode[K, V]) {
	link.Store(n.next.Load())
	hd.Retire(n)
	s.count.Add(-1)
}

// maybeGrowLocked doubles the stripe's bucket array when the load factor is
// exceeded. The new table gets fresh node copies (relinking the live nodes
// would splice readers of the old table into foreign chains mid-walk); the
// old cohort is retired wholesale and recycled after the grace period, so
// resize is churn, not leak.
func (h *HashMap[K, V]) maybeGrowLocked(hd *EpochHandle[hmNode[K, V]], s *hashStripe[K, V]) {
	t := s.table.Load()
	if int(s.count.Load()) <= hmLoadFactor*len(t.buckets) {
		return
	}
	nt := &hmTable[K, V]{buckets: make([]atomic.Pointer[hmNode[K, V]], 2*len(t.buckets))}
	for i := range t.buckets {
		for n := t.buckets[i].Load(); n != nil; n = n.next.Load() {
			nn := hd.Alloc()
			nn.hash = n.hash
			nn.key = n.key
			nn.val = n.val
			b := &nt.buckets[h.bucketIdx(n.hash, len(nt.buckets))]
			nn.next.Store(b.Load())
			b.Store(nn)
		}
	}
	s.table.Store(nt)
	for i := range t.buckets {
		for n := t.buckets[i].Load(); n != nil; {
			next := n.next.Load()
			hd.Retire(n)
			n = next
		}
	}
}

// Put stores v under k, returning the previous value if any.
func (h *HashMap[K, V]) Put(k K, v V) (V, bool) {
	hv := h.hash(k)
	s := h.stripe(hv)
	hd := h.pool.Get()
	s.mu.Lock()
	hd.Pin()
	link, n := h.findLocked(s.table.Load(), hv, k)
	var old V
	had := n != nil
	if had {
		old = n.val
	}
	h.insertLocked(hd, s, link, n, hv, k, v)
	hd.Unpin()
	s.mu.Unlock()
	h.pool.Put(hd)
	return old, had
}

// PutIfAbsent stores v under k only if k is absent. It returns the value now
// mapped to k and whether the store happened.
func (h *HashMap[K, V]) PutIfAbsent(k K, v V) (V, bool) {
	hv := h.hash(k)
	s := h.stripe(hv)
	hd := h.pool.Get()
	s.mu.Lock()
	hd.Pin()
	link, n := h.findLocked(s.table.Load(), hv, k)
	if n != nil {
		v := n.val
		hd.Unpin()
		s.mu.Unlock()
		h.pool.Put(hd)
		return v, false
	}
	h.insertLocked(hd, s, link, nil, hv, k, v)
	hd.Unpin()
	s.mu.Unlock()
	h.pool.Put(hd)
	return v, true
}

// Update atomically computes k's new mapping: f receives the current value
// (and whether one exists) and returns the new value (and whether the key
// should remain present). Update returns f's outputs. It is the linearizable
// compute primitive the Proustian multiset builds on.
func (h *HashMap[K, V]) Update(k K, f func(V, bool) (V, bool)) (V, bool) {
	hv := h.hash(k)
	s := h.stripe(hv)
	hd := h.pool.Get()
	s.mu.Lock()
	hd.Pin()
	link, n := h.findLocked(s.table.Load(), hv, k)
	var old V
	had := n != nil
	if had {
		old = n.val
	}
	next, keep := f(old, had)
	switch {
	case keep:
		h.insertLocked(hd, s, link, n, hv, k, next)
	case had:
		h.removeLocked(hd, s, link, n)
	}
	hd.Unpin()
	s.mu.Unlock()
	h.pool.Put(hd)
	return next, keep
}

// Remove deletes k, returning the previous value if any.
func (h *HashMap[K, V]) Remove(k K) (V, bool) {
	hv := h.hash(k)
	s := h.stripe(hv)
	hd := h.pool.Get()
	s.mu.Lock()
	hd.Pin()
	link, n := h.findLocked(s.table.Load(), hv, k)
	var old V
	had := n != nil
	if had {
		old = n.val
		h.removeLocked(hd, s, link, n)
	}
	hd.Unpin()
	s.mu.Unlock()
	h.pool.Put(hd)
	return old, had
}

// Len counts the entries. Per-stripe counters are read without stopping
// writers, so the result is only quiescently consistent (like
// ConcurrentHashMap.size()).
func (h *HashMap[K, V]) Len() int {
	n := int64(0)
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return int(n)
}

// Range calls f for every entry until f returns false. Entries added or
// removed concurrently may or may not be observed. The walk is lock-free:
// each stripe's table is traversed inside the same epoch-pinned section that
// protects Get.
func (h *HashMap[K, V]) Range(f func(K, V) bool) {
	hd := h.pool.Get()
	hd.Pin()
	defer func() {
		hd.Unpin()
		h.pool.Put(hd)
	}()
	for i := range h.stripes {
		t := h.stripes[i].table.Load()
		for b := range t.buckets {
			for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
				if !f(n.key, n.val) {
					return
				}
			}
		}
	}
}

// IntHasher is a Hasher for integer keys (Fibonacci scrambling).
func IntHasher(k int) uint64 {
	return uint64(k) * 0x9e3779b97f4a7c15
}

// Uint64Hasher is a Hasher for uint64 keys.
func Uint64Hasher(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// StringHasher is an FNV-1a Hasher for string keys.
func StringHasher(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
