// Package conc provides the thread-safe, linearizable concurrent data
// structures that Proust wraps into transactional objects:
//
//   - HashMap: a striped-lock hash map (the ConcurrentHashMap stand-in used
//     by the paper's LazyHashMap).
//   - Ctrie: a concurrent hash-trie with constant-time snapshots (the Scala
//     TrieMap stand-in used by the paper's TrieMap/LazyTrieMap).
//   - SkipListMap: an ordered concurrent map.
//   - PQueue: a lock-based binary heap with lazy-deletion wrappers (the
//     PriorityBlockingQueue stand-in of the paper's Figure 3).
//   - COWHeap: a copy-on-write persistent heap with O(1) snapshots (the
//     paper's "new base copy-on-write data structure" for
//     LazyPriorityQueue).
//
// Everything in this package is non-transactional: each individual operation
// is linearizable and safe for concurrent use, but sequences of operations
// are not atomic. The Proust wrappers in internal/core add transactionality.
package conc

import (
	"sync"
)

const defaultStripes = 64

// Hasher maps a key to a 64-bit hash. Keys equal under == must hash equally.
type Hasher[K comparable] func(K) uint64

// HashMap is a thread-safe hash map using lock striping: the table is split
// into fixed stripes, each guarded by its own RWMutex, so operations on
// different stripes proceed in parallel.
type HashMap[K comparable, V any] struct {
	hash    Hasher[K]
	stripes []hashStripe[K, V]
}

type hashStripe[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// NewHashMap creates a HashMap with the given hasher and default striping.
func NewHashMap[K comparable, V any](hash Hasher[K]) *HashMap[K, V] {
	return NewHashMapStripes[K, V](hash, defaultStripes)
}

// NewHashMapStripes creates a HashMap with n stripes (rounded up to a power
// of two).
func NewHashMapStripes[K comparable, V any](hash Hasher[K], n int) *HashMap[K, V] {
	size := 1
	for size < n {
		size <<= 1
	}
	h := &HashMap[K, V]{
		hash:    hash,
		stripes: make([]hashStripe[K, V], size),
	}
	for i := range h.stripes {
		h.stripes[i].m = make(map[K]V)
	}
	return h
}

func (h *HashMap[K, V]) stripe(k K) *hashStripe[K, V] {
	return &h.stripes[h.hash(k)&uint64(len(h.stripes)-1)]
}

// Get returns the value for k and whether it is present.
func (h *HashMap[K, V]) Get(k K) (V, bool) {
	s := h.stripe(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[k]
	return v, ok
}

// Contains reports whether k is present.
func (h *HashMap[K, V]) Contains(k K) bool {
	_, ok := h.Get(k)
	return ok
}

// Put stores v under k, returning the previous value if any.
func (h *HashMap[K, V]) Put(k K, v V) (V, bool) {
	s := h.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.m[k]
	s.m[k] = v
	return old, ok
}

// PutIfAbsent stores v under k only if k is absent. It returns the value now
// mapped to k and whether the store happened.
func (h *HashMap[K, V]) PutIfAbsent(k K, v V) (V, bool) {
	s := h.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[k]; ok {
		return old, false
	}
	s.m[k] = v
	return v, true
}

// Update atomically computes k's new mapping: f receives the current value
// (and whether one exists) and returns the new value (and whether the key
// should remain present). Update returns f's outputs. It is the linearizable
// compute primitive the Proustian multiset builds on.
func (h *HashMap[K, V]) Update(k K, f func(V, bool) (V, bool)) (V, bool) {
	s := h.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, had := s.m[k]
	next, keep := f(old, had)
	if keep {
		s.m[k] = next
	} else if had {
		delete(s.m, k)
	}
	return next, keep
}

// Remove deletes k, returning the previous value if any.
func (h *HashMap[K, V]) Remove(k K) (V, bool) {
	s := h.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	return old, ok
}

// Len counts the entries. It locks each stripe in turn, so the result is
// only quiescently consistent (like ConcurrentHashMap.size()).
func (h *HashMap[K, V]) Len() int {
	n := 0
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries added or
// removed concurrently may or may not be observed.
func (h *HashMap[K, V]) Range(f func(K, V) bool) {
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// IntHasher is a Hasher for integer keys (Fibonacci scrambling).
func IntHasher(k int) uint64 {
	return uint64(k) * 0x9e3779b97f4a7c15
}

// Uint64Hasher is a Hasher for uint64 keys.
func Uint64Hasher(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// StringHasher is an FNV-1a Hasher for string keys.
func StringHasher(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
