package conc

import (
	"math/bits"
	"sync/atomic"
)

// Ctrie is a concurrent hash-trie map with lock-free updates and
// constant-time snapshots, following Prokopec, Bronson, Bagwell and
// Odersky, "Concurrent Tries with Efficient Non-Blocking Snapshots"
// (PPoPP 2012) — the algorithm behind Scala's concurrent TrieMap, which
// ScalaProust uses as the base structure for its TrieMap wrappers.
//
// Updates use GCAS (generation-compare-and-swap) on interior nodes and
// RDCSS on the root, so Snapshot is O(1): it installs a root with a fresh
// generation, and subsequent writers lazily copy the path they touch.
type Ctrie[K comparable, V any] struct {
	hash     Hasher[K]
	readOnly bool
	root     atomic.Pointer[rootRef[K, V]]
}

// ctGen is a trie generation; identity only.
type ctGen struct{ _ int8 }

// rootRef holds either the live root INode or an in-flight RDCSS
// descriptor.
type rootRef[K comparable, V any] struct {
	in   *ctINode[K, V]
	desc *rdcssDesc[K, V]
}

type rdcssDesc[K comparable, V any] struct {
	old       *rootRef[K, V]
	expMain   *ctMain[K, V]
	nv        *rootRef[K, V]
	committed atomic.Bool
}

// ctMain is a tagged union of the main-node kinds (CNode, TNode, LNode) plus
// the GCAS failed-node marker. Exactly one of cn/tn/ln/failed is set.
type ctMain[K comparable, V any] struct {
	cn     *ctCNode[K, V]
	tn     *ctTNode[K, V]
	ln     *ctLNode[K, V]
	failed *ctMain[K, V]

	prev atomic.Pointer[ctMain[K, V]]
}

type ctINode[K comparable, V any] struct {
	gen  *ctGen
	main atomic.Pointer[ctMain[K, V]]
}

func newCtINode[K comparable, V any](gen *ctGen, m *ctMain[K, V]) *ctINode[K, V] {
	in := &ctINode[K, V]{gen: gen}
	in.main.Store(m)
	return in
}

// ctBranch is either *ctINode or *ctSNode.
type ctBranch[K comparable, V any] interface {
	isCtBranch()
}

func (*ctINode[K, V]) isCtBranch() {}
func (*ctSNode[K, V]) isCtBranch() {}

type ctSNode[K comparable, V any] struct {
	hc uint32
	k  K
	v  V
}

type ctTNode[K comparable, V any] struct {
	sn *ctSNode[K, V]
}

type ctLNode[K comparable, V any] struct {
	entries []*ctSNode[K, V]
}

type ctCNode[K comparable, V any] struct {
	bmp   uint32
	array []ctBranch[K, V]
	gen   *ctGen
}

// NewCtrie creates an empty Ctrie with the given hasher.
func NewCtrie[K comparable, V any](hash Hasher[K]) *Ctrie[K, V] {
	gen := &ctGen{}
	root := newCtINode(gen, &ctMain[K, V]{cn: &ctCNode[K, V]{gen: gen}})
	ct := &Ctrie[K, V]{hash: hash}
	ct.root.Store(&rootRef[K, V]{in: root})
	return ct
}

func (ct *Ctrie[K, V]) hc(k K) uint32 {
	h := ct.hash(k)
	return uint32(h ^ (h >> 32))
}

// --- RDCSS on the root -------------------------------------------------

func (ct *Ctrie[K, V]) rdcssReadRootRef(abort bool) *rootRef[K, V] {
	for {
		r := ct.root.Load()
		if r.in != nil {
			return r
		}
		ct.rdcssComplete(abort)
	}
}

func (ct *Ctrie[K, V]) rdcssReadRoot(abort bool) *ctINode[K, V] {
	return ct.rdcssReadRootRef(abort).in
}

func (ct *Ctrie[K, V]) rdcssComplete(abort bool) {
	for {
		r := ct.root.Load()
		if r.in != nil {
			return
		}
		desc := r.desc
		if abort {
			if ct.root.CompareAndSwap(r, desc.old) {
				return
			}
			continue
		}
		oldMain := ct.gcasRead(desc.old.in)
		if oldMain == desc.expMain {
			if ct.root.CompareAndSwap(r, desc.nv) {
				desc.committed.Store(true)
				return
			}
			continue
		}
		if ct.root.CompareAndSwap(r, desc.old) {
			return
		}
	}
}

func (ct *Ctrie[K, V]) rdcssRoot(ov *rootRef[K, V], expMain *ctMain[K, V], nv *ctINode[K, V]) bool {
	desc := &rdcssDesc[K, V]{old: ov, expMain: expMain, nv: &rootRef[K, V]{in: nv}}
	if ct.root.CompareAndSwap(ov, &rootRef[K, V]{desc: desc}) {
		ct.rdcssComplete(false)
		return desc.committed.Load()
	}
	return false
}

// --- GCAS on interior nodes --------------------------------------------

func (ct *Ctrie[K, V]) gcas(in *ctINode[K, V], old, next *ctMain[K, V]) bool {
	next.prev.Store(old)
	if in.main.CompareAndSwap(old, next) {
		ct.gcasComplete(in, next)
		return next.prev.Load() == nil
	}
	return false
}

func (ct *Ctrie[K, V]) gcasRead(in *ctINode[K, V]) *ctMain[K, V] {
	m := in.main.Load()
	if m.prev.Load() == nil {
		return m
	}
	return ct.gcasComplete(in, m)
}

func (ct *Ctrie[K, V]) gcasComplete(in *ctINode[K, V], m *ctMain[K, V]) *ctMain[K, V] {
	for {
		if m == nil {
			return nil
		}
		prev := m.prev.Load()
		if prev == nil {
			return m
		}
		if prev.failed != nil {
			// The GCAS failed: roll back to the previous main node.
			if in.main.CompareAndSwap(m, prev.failed) {
				return prev.failed
			}
			m = in.main.Load()
			continue
		}
		root := ct.rdcssReadRoot(true)
		if root.gen == in.gen && !ct.readOnly {
			if m.prev.CompareAndSwap(prev, nil) {
				return m
			}
			continue
		}
		// The node belongs to an older generation: fail the GCAS.
		m.prev.CompareAndSwap(prev, &ctMain[K, V]{failed: prev})
		m = in.main.Load()
	}
}

// --- CNode helpers -------------------------------------------------------

func ctFlagPos(hc uint32, lev uint, bmp uint32) (flag uint32, pos int) {
	idx := (hc >> lev) & 0x1f
	flag = uint32(1) << idx
	pos = bits.OnesCount32(bmp & (flag - 1))
	return flag, pos
}

func (cn *ctCNode[K, V]) insertedAt(pos int, flag uint32, b ctBranch[K, V], gen *ctGen) *ctMain[K, V] {
	arr := make([]ctBranch[K, V], len(cn.array)+1)
	copy(arr, cn.array[:pos])
	arr[pos] = b
	copy(arr[pos+1:], cn.array[pos:])
	return &ctMain[K, V]{cn: &ctCNode[K, V]{bmp: cn.bmp | flag, array: arr, gen: gen}}
}

func (cn *ctCNode[K, V]) updatedAt(pos int, b ctBranch[K, V], gen *ctGen) *ctCNode[K, V] {
	arr := make([]ctBranch[K, V], len(cn.array))
	copy(arr, cn.array)
	arr[pos] = b
	return &ctCNode[K, V]{bmp: cn.bmp, array: arr, gen: gen}
}

func (cn *ctCNode[K, V]) removedAt(pos int, flag uint32, gen *ctGen) *ctCNode[K, V] {
	arr := make([]ctBranch[K, V], len(cn.array)-1)
	copy(arr, cn.array[:pos])
	copy(arr[pos:], cn.array[pos+1:])
	return &ctCNode[K, V]{bmp: cn.bmp &^ flag, array: arr, gen: gen}
}

// renewed copies the CNode to a new generation, copying child INodes along.
func (ct *Ctrie[K, V]) renewed(cn *ctCNode[K, V], gen *ctGen) *ctCNode[K, V] {
	arr := make([]ctBranch[K, V], len(cn.array))
	for i, b := range cn.array {
		if in, ok := b.(*ctINode[K, V]); ok {
			arr[i] = ct.copyToGen(in, gen)
		} else {
			arr[i] = b
		}
	}
	return &ctCNode[K, V]{bmp: cn.bmp, array: arr, gen: gen}
}

func (ct *Ctrie[K, V]) copyToGen(in *ctINode[K, V], gen *ctGen) *ctINode[K, V] {
	return newCtINode(gen, ct.gcasRead(in))
}

// toContracted entombs a single-SNode CNode below the root.
func (cn *ctCNode[K, V]) toContracted(lev uint) *ctMain[K, V] {
	if lev > 0 && len(cn.array) == 1 {
		if sn, ok := cn.array[0].(*ctSNode[K, V]); ok {
			return &ctMain[K, V]{tn: &ctTNode[K, V]{sn: sn}}
		}
	}
	return &ctMain[K, V]{cn: cn}
}

// toCompressed resurrects tombed children and contracts.
func (ct *Ctrie[K, V]) toCompressed(cn *ctCNode[K, V], lev uint, gen *ctGen) *ctMain[K, V] {
	arr := make([]ctBranch[K, V], len(cn.array))
	for i, b := range cn.array {
		if in, ok := b.(*ctINode[K, V]); ok {
			m := ct.gcasRead(in)
			if m != nil && m.tn != nil {
				arr[i] = m.tn.sn
				continue
			}
		}
		arr[i] = b
	}
	return (&ctCNode[K, V]{bmp: cn.bmp, array: arr, gen: gen}).toContracted(lev)
}

func (ct *Ctrie[K, V]) clean(in *ctINode[K, V], lev uint) {
	m := ct.gcasRead(in)
	if m != nil && m.cn != nil {
		ct.gcas(in, m, ct.toCompressed(m.cn, lev, in.gen))
	}
}

// dual builds the subtree holding two colliding SNodes.
func ctDual[K comparable, V any](x *ctSNode[K, V], xhc uint32, y *ctSNode[K, V], yhc uint32, lev uint, gen *ctGen) *ctMain[K, V] {
	if lev < 35 {
		xidx := (xhc >> lev) & 0x1f
		yidx := (yhc >> lev) & 0x1f
		bmp := (uint32(1) << xidx) | (uint32(1) << yidx)
		if xidx == yidx {
			sub := newCtINode(gen, ctDual(x, xhc, y, yhc, lev+5, gen))
			return &ctMain[K, V]{cn: &ctCNode[K, V]{bmp: bmp, array: []ctBranch[K, V]{sub}, gen: gen}}
		}
		arr := []ctBranch[K, V]{x, y}
		if xidx > yidx {
			arr[0], arr[1] = y, x
		}
		return &ctMain[K, V]{cn: &ctCNode[K, V]{bmp: bmp, array: arr, gen: gen}}
	}
	return &ctMain[K, V]{ln: &ctLNode[K, V]{entries: []*ctSNode[K, V]{x, y}}}
}

// --- LNode helpers -------------------------------------------------------

func (ln *ctLNode[K, V]) get(k K) (V, bool) {
	for _, sn := range ln.entries {
		if sn.k == k {
			return sn.v, true
		}
	}
	var zero V
	return zero, false
}

func (ln *ctLNode[K, V]) inserted(sn *ctSNode[K, V]) *ctLNode[K, V] {
	out := &ctLNode[K, V]{entries: make([]*ctSNode[K, V], 0, len(ln.entries)+1)}
	replaced := false
	for _, e := range ln.entries {
		if e.k == sn.k {
			out.entries = append(out.entries, sn)
			replaced = true
		} else {
			out.entries = append(out.entries, e)
		}
	}
	if !replaced {
		out.entries = append(out.entries, sn)
	}
	return out
}

func (ln *ctLNode[K, V]) removed(k K) (*ctMain[K, V], V, bool) {
	idx := -1
	for i, e := range ln.entries {
		if e.k == k {
			idx = i
			break
		}
	}
	if idx == -1 {
		var zero V
		return nil, zero, false
	}
	old := ln.entries[idx].v
	rest := make([]*ctSNode[K, V], 0, len(ln.entries)-1)
	rest = append(rest, ln.entries[:idx]...)
	rest = append(rest, ln.entries[idx+1:]...)
	if len(rest) == 1 {
		return &ctMain[K, V]{tn: &ctTNode[K, V]{sn: rest[0]}}, old, true
	}
	return &ctMain[K, V]{ln: &ctLNode[K, V]{entries: rest}}, old, true
}

// --- public operations ---------------------------------------------------

// Get returns the value for k.
func (ct *Ctrie[K, V]) Get(k K) (V, bool) {
	hc := ct.hc(k)
	for {
		r := ct.rdcssReadRoot(false)
		v, ok, restart := ct.ilookup(r, k, hc, 0, nil, r.gen)
		if !restart {
			return v, ok
		}
	}
}

// Contains reports whether k is present.
func (ct *Ctrie[K, V]) Contains(k K) bool {
	_, ok := ct.Get(k)
	return ok
}

// Put stores v under k and returns the previous value, if any.
func (ct *Ctrie[K, V]) Put(k K, v V) (V, bool) {
	if ct.readOnly {
		panic("conc: Put on read-only Ctrie snapshot")
	}
	hc := ct.hc(k)
	for {
		r := ct.rdcssReadRoot(false)
		old, had, restart := ct.iinsert(r, k, v, hc, 0, nil, r.gen)
		if !restart {
			return old, had
		}
	}
}

// Remove deletes k and returns the removed value, if any.
func (ct *Ctrie[K, V]) Remove(k K) (V, bool) {
	if ct.readOnly {
		panic("conc: Remove on read-only Ctrie snapshot")
	}
	hc := ct.hc(k)
	for {
		r := ct.rdcssReadRoot(false)
		old, had, restart := ct.iremove(r, k, hc, 0, nil, r.gen)
		if !restart {
			return old, had
		}
	}
}

// Snapshot returns a mutable snapshot in O(1). The snapshot and the
// original evolve independently; writers lazily copy the paths they touch.
// Proust uses one snapshot per transaction as the shadow copy.
func (ct *Ctrie[K, V]) Snapshot() *Ctrie[K, V] {
	for {
		rref := ct.rdcssReadRootRef(false)
		r := rref.in
		expMain := ct.gcasRead(r)
		if ct.rdcssRoot(rref, expMain, ct.copyToGen(r, &ctGen{})) {
			snap := &Ctrie[K, V]{hash: ct.hash}
			snap.root.Store(&rootRef[K, V]{in: ct.copyToGen(r, &ctGen{})})
			return snap
		}
	}
}

// ReadOnlySnapshot returns a read-only snapshot in O(1); mutating it panics.
func (ct *Ctrie[K, V]) ReadOnlySnapshot() *Ctrie[K, V] {
	if ct.readOnly {
		return ct
	}
	for {
		rref := ct.rdcssReadRootRef(false)
		r := rref.in
		expMain := ct.gcasRead(r)
		if ct.rdcssRoot(rref, expMain, ct.copyToGen(r, &ctGen{})) {
			snap := &Ctrie[K, V]{hash: ct.hash, readOnly: true}
			snap.root.Store(&rootRef[K, V]{in: r})
			return snap
		}
	}
}

// Range calls f over a consistent snapshot of the map until f returns false.
func (ct *Ctrie[K, V]) Range(f func(K, V) bool) {
	snap := ct.ReadOnlySnapshot()
	snap.walk(snap.rdcssReadRoot(false), f)
}

// Len counts the entries over a consistent snapshot.
func (ct *Ctrie[K, V]) Len() int {
	n := 0
	ct.Range(func(K, V) bool {
		n++
		return true
	})
	return n
}

func (ct *Ctrie[K, V]) walk(in *ctINode[K, V], f func(K, V) bool) bool {
	m := ct.gcasRead(in)
	switch {
	case m == nil:
		return true
	case m.cn != nil:
		for _, b := range m.cn.array {
			switch br := b.(type) {
			case *ctSNode[K, V]:
				if !f(br.k, br.v) {
					return false
				}
			case *ctINode[K, V]:
				if !ct.walk(br, f) {
					return false
				}
			}
		}
	case m.tn != nil:
		return f(m.tn.sn.k, m.tn.sn.v)
	case m.ln != nil:
		for _, sn := range m.ln.entries {
			if !f(sn.k, sn.v) {
				return false
			}
		}
	}
	return true
}

// --- core recursive operations -------------------------------------------

func (ct *Ctrie[K, V]) ilookup(in *ctINode[K, V], k K, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			return zero, false, false
		}
		switch b := cn.array[pos].(type) {
		case *ctINode[K, V]:
			if ct.readOnly || startgen == b.gen {
				return ct.ilookup(b, k, hc, lev+5, in, startgen)
			}
			if ct.gcas(in, m, &ctMain[K, V]{cn: ct.renewed(cn, startgen)}) {
				return ct.ilookup(in, k, hc, lev, parent, startgen)
			}
			return zero, false, true
		case *ctSNode[K, V]:
			if b.hc == hc && b.k == k {
				return b.v, true, false
			}
			return zero, false, false
		}
		return zero, false, true
	case m.tn != nil:
		if ct.readOnly {
			if m.tn.sn.hc == hc && m.tn.sn.k == k {
				return m.tn.sn.v, true, false
			}
			return zero, false, false
		}
		ct.clean(parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		v, ok := m.ln.get(k)
		return v, ok, false
	}
	return zero, false, true
}

func (ct *Ctrie[K, V]) iinsert(in *ctINode[K, V], k K, v V, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			rn := cn
			if cn.gen != in.gen {
				rn = ct.renewed(cn, in.gen)
			}
			if ct.gcas(in, m, rn.insertedAt(pos, flag, &ctSNode[K, V]{hc: hc, k: k, v: v}, in.gen)) {
				return zero, false, false
			}
			return zero, false, true
		}
		switch b := cn.array[pos].(type) {
		case *ctINode[K, V]:
			if startgen == b.gen {
				return ct.iinsert(b, k, v, hc, lev+5, in, startgen)
			}
			if ct.gcas(in, m, &ctMain[K, V]{cn: ct.renewed(cn, startgen)}) {
				return ct.iinsert(in, k, v, hc, lev, parent, startgen)
			}
			return zero, false, true
		case *ctSNode[K, V]:
			rn := cn
			if cn.gen != in.gen {
				rn = ct.renewed(cn, in.gen)
			}
			if b.hc == hc && b.k == k {
				ncn := rn.updatedAt(pos, &ctSNode[K, V]{hc: hc, k: k, v: v}, in.gen)
				if ct.gcas(in, m, &ctMain[K, V]{cn: ncn}) {
					return b.v, true, false
				}
				return zero, false, true
			}
			nsn := &ctSNode[K, V]{hc: hc, k: k, v: v}
			nin := newCtINode(in.gen, ctDual(b, b.hc, nsn, hc, lev+5, in.gen))
			ncn := rn.updatedAt(pos, nin, in.gen)
			if ct.gcas(in, m, &ctMain[K, V]{cn: ncn}) {
				return zero, false, false
			}
			return zero, false, true
		}
		return zero, false, true
	case m.tn != nil:
		ct.clean(parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		old, had := m.ln.get(k)
		nln := m.ln.inserted(&ctSNode[K, V]{hc: hc, k: k, v: v})
		if ct.gcas(in, m, &ctMain[K, V]{ln: nln}) {
			return old, had, false
		}
		return zero, false, true
	}
	return zero, false, true
}

func (ct *Ctrie[K, V]) iremove(in *ctINode[K, V], k K, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			return zero, false, false
		}
		var (
			res     V
			removed bool
			restart bool
		)
		switch b := cn.array[pos].(type) {
		case *ctINode[K, V]:
			if startgen == b.gen {
				res, removed, restart = ct.iremove(b, k, hc, lev+5, in, startgen)
			} else {
				if ct.gcas(in, m, &ctMain[K, V]{cn: ct.renewed(cn, startgen)}) {
					res, removed, restart = ct.iremove(in, k, hc, lev, parent, startgen)
				} else {
					restart = true
				}
			}
		case *ctSNode[K, V]:
			if b.hc == hc && b.k == k {
				ncn := cn.removedAt(pos, flag, in.gen).toContracted(lev)
				if ct.gcas(in, m, ncn) {
					res, removed = b.v, true
				} else {
					restart = true
				}
			}
		}
		if restart {
			return zero, false, true
		}
		if removed && parent != nil {
			cur := ct.gcasRead(in)
			if cur != nil && cur.tn != nil {
				ct.cleanParent(parent, in, hc, lev-5, startgen)
			}
		}
		return res, removed, false
	case m.tn != nil:
		ct.clean(parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		nmain, old, had := m.ln.removed(k)
		if !had {
			return zero, false, false
		}
		if ct.gcas(in, m, nmain) {
			return old, true, false
		}
		return zero, false, true
	}
	return zero, false, true
}

// cleanParent unlinks a tombed INode from its parent CNode.
func (ct *Ctrie[K, V]) cleanParent(parent, in *ctINode[K, V], hc uint32, plev uint, startgen *ctGen) {
	for {
		pm := ct.gcasRead(parent)
		if pm == nil || pm.cn == nil {
			return
		}
		cn := pm.cn
		flag, pos := ctFlagPos(hc, plev, cn.bmp)
		if cn.bmp&flag == 0 {
			return
		}
		sub, ok := cn.array[pos].(*ctINode[K, V])
		if !ok || sub != in {
			return
		}
		m := ct.gcasRead(in)
		if m == nil || m.tn == nil {
			return
		}
		ncn := cn.updatedAt(pos, m.tn.sn, in.gen).toContracted(plev)
		if ct.gcas(parent, pm, ncn) {
			return
		}
		if ct.rdcssReadRoot(false).gen != startgen {
			return
		}
	}
}
