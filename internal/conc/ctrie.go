package conc

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Ctrie is a concurrent hash-trie map with lock-free updates and
// constant-time snapshots, following Prokopec, Bronson, Bagwell and
// Odersky, "Concurrent Tries with Efficient Non-Blocking Snapshots"
// (PPoPP 2012) — the algorithm behind Scala's concurrent TrieMap, which
// ScalaProust uses as the base structure for its TrieMap wrappers.
//
// Updates use GCAS (generation-compare-and-swap) on interior nodes and
// RDCSS on the root, so Snapshot is O(1) in the size of the trie: it
// installs a root with a fresh generation, and subsequent writers lazily
// copy the paths they touch.
//
// On top of the PPoPP 2012 algorithm this implementation adds the memory
// discipline described in DESIGN.md §13:
//
//   - Branch slots are atomic words holding *ctBranch boxes, so a value
//     update on a key that is already present can CAS the slot in place
//     when the enclosing CNode is stamped with the current generation —
//     no CNode/array copy, no allocation (CtrieConfig.InPlace; off by
//     default, see the config for the workload tradeoff). Copy-on-write
//     remains the rule the moment a snapshot installs a new generation.
//   - Displacing a current-generation CNode first freezes every slot
//     (CAS-ing in a freeze wrapper, as in Prokopec's cache-trie snapshots)
//     so an in-place writer can never publish into a node that a copier
//     has already read: the slot CAS and the displacement race on the
//     same word, which makes the lost-update window detectable atomically.
//   - Displaced nodes whose generation matches their INode's generation
//     are provably unreachable from every snapshot, so they are retired
//     into epoch-based pools (epoch.go, ctriepool.go) and reused once a
//     grace period has elapsed. With in-place mutation enabled, Snapshot
//     and ReadOnlySnapshot wait one grace period after installing the new
//     generation so writers that read the old generation have drained;
//     the wait is bounded by in-flight operation length, never trie size.
type Ctrie[K comparable, V any] struct {
	hash        Hasher[K]
	readOnly    bool
	unversioned bool
	inplace     bool
	pool        *ctPool[K, V]
	root        atomic.Pointer[rootRef[K, V]]
}

// ctGen is a trie generation; identity only.
type ctGen struct{ _ int8 }

// rootRef holds either the live root INode or an in-flight RDCSS
// descriptor.
type rootRef[K comparable, V any] struct {
	in   *ctINode[K, V]
	desc *rdcssDesc[K, V]
}

type rdcssDesc[K comparable, V any] struct {
	old       *rootRef[K, V]
	expMain   *ctMain[K, V]
	nv        *rootRef[K, V]
	committed atomic.Bool
}

// ctMain is a tagged union of the main-node kinds (CNode, TNode, LNode)
// plus the GCAS failed-node marker. Exactly one of cn/tn/ln/failed is set;
// tn holds the entombed SNode box directly.
type ctMain[K comparable, V any] struct {
	cn     *ctCNode[K, V]
	tn     *ctBranch[K, V]
	ln     *ctLNode[K, V]
	failed *ctMain[K, V]

	prev atomic.Pointer[ctMain[K, V]]
}

type ctINode[K comparable, V any] struct {
	gen  *ctGen
	main atomic.Pointer[ctMain[K, V]]
}

func newCtINode[K comparable, V any](gen *ctGen, m *ctMain[K, V]) *ctINode[K, V] {
	in := &ctINode[K, V]{gen: gen}
	in.main.Store(m)
	return in
}

// ctBranch is a branch box: either an INode edge (in != nil), a freeze
// wrapper (fz != nil, see the displacement protocol below), or an SNode
// carrying a key/value pair. Boxes are immutable once published — in-place
// mutation replaces the *slot's* box pointer, never a box's fields — and
// carry the generation they were created under, which decides whether a
// displaced box may be retired into the pool (a box whose generation
// predates the latest snapshot is shared with that snapshot).
type ctBranch[K comparable, V any] struct {
	in  *ctINode[K, V]
	fz  *ctBranch[K, V]
	gen *ctGen
	hc  uint32
	k   K
	v   V
}

// ctSlot is one CAS-able branch slot of a CNode. The pointer is accessed
// atomically once the CNode is published; while a replacement is still
// private to its builder, plain stores suffice — the GCAS that publishes
// it is the synchronizing operation (and gives the race detector its
// happens-before edge).
type ctSlot[K comparable, V any] struct {
	p unsafe.Pointer // *ctBranch[K, V]
}

type ctLNode[K comparable, V any] struct {
	entries []*ctBranch[K, V]
}

type ctCNode[K comparable, V any] struct {
	bmp   uint32
	array []ctSlot[K, V]
	gen   *ctGen
}

// loadRaw reads slot i without unwrapping freeze markers.
func (cn *ctCNode[K, V]) loadRaw(i int) *ctBranch[K, V] {
	return (*ctBranch[K, V])(atomic.LoadPointer(&cn.array[i].p))
}

// load reads slot i through any freeze wrapper.
func (cn *ctCNode[K, V]) load(i int) *ctBranch[K, V] {
	b := cn.loadRaw(i)
	if b != nil && b.fz != nil {
		return b.fz
	}
	return b
}

// casSlot CASes slot i; this is how in-place updates and freeze markers
// are published.
func (cn *ctCNode[K, V]) casSlot(i int, old, new *ctBranch[K, V]) bool {
	return atomic.CompareAndSwapPointer(&cn.array[i].p, unsafe.Pointer(old), unsafe.Pointer(new))
}

// setSlot plain-stores slot i of a CNode that is still private to its
// builder (never published).
func (cn *ctCNode[K, V]) setSlot(i int, b *ctBranch[K, V]) {
	cn.array[i].p = unsafe.Pointer(b)
}

// CtrieConfig selects the Ctrie variants described in DESIGN.md §13.
type CtrieConfig struct {
	// Unversioned drops the persistence machinery: a single generation
	// forever, GCAS degenerates to a plain CAS, and
	// Snapshot/ReadOnlySnapshot panic. Use it when rollback is provided
	// elsewhere (the eager Proustian map's undo logs) and snapshots are
	// never taken; Range/Len walk the live trie and are weakly
	// consistent, like sync.Map.
	Unversioned bool

	// InPlace enables the slot-CAS fast path for value updates on
	// current-generation CNodes, guarded by the per-slot freeze protocol.
	// It trades a freeze pass (one CAS per slot) on every structural
	// displacement for zero-copy value updates, so it wins on
	// update-dominant workloads over stable key sets and loses on
	// insert/remove-heavy churn — see EXPERIMENTS.md for the measured
	// crossover. Snapshots stay O(1) either way; with InPlace set they
	// additionally wait one epoch grace period (bounded by in-flight
	// operation length, never trie size).
	InPlace bool
}

// NewCtrie creates an empty Ctrie with the given hasher: the default
// snapshot-capable, copy-on-write configuration.
func NewCtrie[K comparable, V any](hash Hasher[K]) *Ctrie[K, V] {
	return NewCtrieConfigured[K, V](hash, CtrieConfig{})
}

// NewCtrieUnversioned creates a Ctrie that never pays the persistence
// machinery (CtrieConfig.Unversioned).
func NewCtrieUnversioned[K comparable, V any](hash Hasher[K]) *Ctrie[K, V] {
	return NewCtrieConfigured[K, V](hash, CtrieConfig{Unversioned: true})
}

// NewCtrieConfigured creates an empty Ctrie with an explicit configuration.
func NewCtrieConfigured[K comparable, V any](hash Hasher[K], cfg CtrieConfig) *Ctrie[K, V] {
	gen := &ctGen{}
	root := newCtINode(gen, &ctMain[K, V]{cn: &ctCNode[K, V]{gen: gen}})
	ct := &Ctrie[K, V]{
		hash:        hash,
		unversioned: cfg.Unversioned,
		inplace:     cfg.InPlace,
		pool:        newCtPool[K, V](),
	}
	ct.root.Store(&rootRef[K, V]{in: root})
	return ct
}

func (ct *Ctrie[K, V]) hc(k K) uint32 {
	h := ct.hash(k)
	return uint32(h ^ (h >> 32))
}

// --- RDCSS on the root -------------------------------------------------

func (ct *Ctrie[K, V]) rdcssReadRootRef(abort bool) *rootRef[K, V] {
	for {
		r := ct.root.Load()
		if r.in != nil {
			return r
		}
		ct.rdcssComplete(abort)
	}
}

func (ct *Ctrie[K, V]) rdcssReadRoot(abort bool) *ctINode[K, V] {
	return ct.rdcssReadRootRef(abort).in
}

func (ct *Ctrie[K, V]) rdcssComplete(abort bool) {
	for {
		r := ct.root.Load()
		if r.in != nil {
			return
		}
		desc := r.desc
		if abort {
			if ct.root.CompareAndSwap(r, desc.old) {
				return
			}
			continue
		}
		oldMain := ct.gcasRead(desc.old.in)
		if oldMain == desc.expMain {
			if ct.root.CompareAndSwap(r, desc.nv) {
				desc.committed.Store(true)
				return
			}
			continue
		}
		if ct.root.CompareAndSwap(r, desc.old) {
			return
		}
	}
}

func (ct *Ctrie[K, V]) rdcssRoot(ov *rootRef[K, V], expMain *ctMain[K, V], nv *ctINode[K, V]) bool {
	desc := &rdcssDesc[K, V]{old: ov, expMain: expMain, nv: &rootRef[K, V]{in: nv}}
	if ct.root.CompareAndSwap(ov, &rootRef[K, V]{desc: desc}) {
		ct.rdcssComplete(false)
		return desc.committed.Load()
	}
	return false
}

// --- GCAS on interior nodes --------------------------------------------

// gcas installs next over old under in. On failure it also disposes of
// next: a copy that lost the CAS was never published and goes straight
// back to the freelists, while a copy that was installed and then rolled
// back by the generation check was visible to readers and must age through
// the epoch before reuse.
func (ct *Ctrie[K, V]) gcas(h *ctHandle[K, V], in *ctINode[K, V], old, next *ctMain[K, V]) bool {
	if ct.unversioned {
		// A single generation forever: no snapshot can invalidate the
		// update between CAS and commit, so GCAS is a plain CAS.
		if in.main.CompareAndSwap(old, next) {
			return true
		}
		ct.recycleCopy(h, next)
		return false
	}
	next.prev.Store(old)
	if in.main.CompareAndSwap(old, next) {
		ct.gcasComplete(in, next)
		if next.prev.Load() == nil {
			return true
		}
		if next.cn != nil {
			h.retireCNode(next.cn)
		}
		h.retireMain(next)
		return false
	}
	ct.recycleCopy(h, next)
	return false
}

func (ct *Ctrie[K, V]) gcasRead(in *ctINode[K, V]) *ctMain[K, V] {
	m := in.main.Load()
	if ct.unversioned {
		return m
	}
	if m.prev.Load() == nil {
		return m
	}
	return ct.gcasComplete(in, m)
}

func (ct *Ctrie[K, V]) gcasComplete(in *ctINode[K, V], m *ctMain[K, V]) *ctMain[K, V] {
	for {
		if m == nil {
			return nil
		}
		prev := m.prev.Load()
		if prev == nil {
			return m
		}
		if prev.failed != nil {
			// The GCAS failed: roll back to the previous main node.
			if in.main.CompareAndSwap(m, prev.failed) {
				return prev.failed
			}
			m = in.main.Load()
			continue
		}
		root := ct.rdcssReadRoot(true)
		if root.gen == in.gen && !ct.readOnly {
			if m.prev.CompareAndSwap(prev, nil) {
				return m
			}
			continue
		}
		// The node belongs to an older generation: fail the GCAS.
		m.prev.CompareAndSwap(prev, &ctMain[K, V]{failed: prev})
		m = in.main.Load()
	}
}

// --- displacement protocol ----------------------------------------------

// freezeIfLive freezes every slot of cn when in-place writers could target
// it (its generation matches the owning INode's). A frozen slot makes any
// later in-place CAS fail — the copier and the updater race on the slot
// word itself — so the replacement built from the frozen payloads can
// never lose a concurrent in-place update. Old-generation CNodes are
// immutable (in-place is generation-gated), so they need no freezing.
func (ct *Ctrie[K, V]) freezeIfLive(h *ctHandle[K, V], in *ctINode[K, V], cn *ctCNode[K, V]) {
	if !ct.inplace || cn.gen != in.gen {
		return
	}
	for i := range cn.array {
		for {
			b := cn.loadRaw(i)
			if b == nil || b.fz != nil {
				break
			}
			f := h.newFrozen(b)
			if cn.casSlot(i, b, f) {
				break
			}
			h.recycleBranchNow(f)
		}
	}
}

// retireDisplaced retires a successfully displaced cn-main into the pool
// when it is provably unreachable from every snapshot: a CNode whose
// generation matches its INode's was created after the latest snapshot
// (nothing carries a generation before that generation exists), and
// displacement removed the only structural reference to it. Freeze
// wrappers in its slots are retired along with it. TNode/LNode mains are
// rare and are left to the garbage collector.
func (ct *Ctrie[K, V]) retireDisplaced(h *ctHandle[K, V], in *ctINode[K, V], m *ctMain[K, V]) {
	cn := m.cn
	if cn == nil || cn.gen != in.gen {
		return
	}
	for i := range cn.array {
		if b := cn.loadRaw(i); b != nil && b.fz != nil {
			h.retireBranch(b)
		}
	}
	h.retireCNode(cn)
	h.retireMain(m)
}

// retireBranchIf retires a displaced branch box when its generation proves
// it post-dates the latest snapshot.
func (ct *Ctrie[K, V]) retireBranchIf(h *ctHandle[K, V], in *ctINode[K, V], b *ctBranch[K, V]) {
	if b.gen == in.gen {
		h.retireBranch(b)
	}
}

// recycleCopy returns a never-published replacement (a losing GCAS copy)
// straight to the freelists — no grace period needed.
func (ct *Ctrie[K, V]) recycleCopy(h *ctHandle[K, V], m *ctMain[K, V]) {
	if m.cn != nil {
		h.recycleCNodeNow(m.cn)
		m.cn = nil
	}
	h.recycleMainNow(m)
}

// --- CNode helpers -------------------------------------------------------

func ctFlagPos(hc uint32, lev uint, bmp uint32) (flag uint32, pos int) {
	idx := (hc >> lev) & 0x1f
	flag = uint32(1) << idx
	pos = bits.OnesCount32(bmp & (flag - 1))
	return flag, pos
}

// cowInserted builds a copy of cn with branch b inserted at pos. The
// caller has frozen cn if it is live.
func (ct *Ctrie[K, V]) cowInserted(h *ctHandle[K, V], cn *ctCNode[K, V], pos int, flag uint32, b *ctBranch[K, V], gen *ctGen) *ctCNode[K, V] {
	ncn := h.newCNode(len(cn.array)+1, cn.bmp|flag, gen)
	for i := 0; i < pos; i++ {
		ncn.setSlot(i, cn.load(i))
	}
	ncn.setSlot(pos, b)
	for i := pos; i < len(cn.array); i++ {
		ncn.setSlot(i+1, cn.load(i))
	}
	return ncn
}

// cowUpdated builds a copy of cn with slot pos replaced by b.
func (ct *Ctrie[K, V]) cowUpdated(h *ctHandle[K, V], cn *ctCNode[K, V], pos int, b *ctBranch[K, V], gen *ctGen) *ctCNode[K, V] {
	ncn := h.newCNode(len(cn.array), cn.bmp, gen)
	for i := range cn.array {
		if i == pos {
			ncn.setSlot(i, b)
		} else {
			ncn.setSlot(i, cn.load(i))
		}
	}
	return ncn
}

// cowRemoved builds a copy of cn with slot pos removed.
func (ct *Ctrie[K, V]) cowRemoved(h *ctHandle[K, V], cn *ctCNode[K, V], pos int, flag uint32, gen *ctGen) *ctCNode[K, V] {
	ncn := h.newCNode(len(cn.array)-1, cn.bmp&^flag, gen)
	for i := 0; i < pos; i++ {
		ncn.setSlot(i, cn.load(i))
	}
	for i := pos + 1; i < len(cn.array); i++ {
		ncn.setSlot(i-1, cn.load(i))
	}
	return ncn
}

// renewed copies the CNode to a new generation, copying child INodes
// along. The caller has frozen cn if it is live.
func (ct *Ctrie[K, V]) renewed(h *ctHandle[K, V], cn *ctCNode[K, V], gen *ctGen) *ctCNode[K, V] {
	ncn := h.newCNode(len(cn.array), cn.bmp, gen)
	for i := range cn.array {
		b := cn.load(i)
		if b.in != nil {
			ncn.setSlot(i, h.newINodeBranch(ct.copyToGen(b.in, gen), gen))
		} else {
			ncn.setSlot(i, b)
		}
	}
	return ncn
}

func (ct *Ctrie[K, V]) copyToGen(in *ctINode[K, V], gen *ctGen) *ctINode[K, V] {
	return newCtINode(gen, ct.gcasRead(in))
}

// toContracted entombs a single-SNode CNode below the root, recycling the
// (private, never-published) CNode it consumes if it contracts.
func (ct *Ctrie[K, V]) toContracted(h *ctHandle[K, V], cn *ctCNode[K, V], lev uint) *ctMain[K, V] {
	if lev > 0 && len(cn.array) == 1 {
		if b := cn.load(0); b != nil && b.in == nil {
			h.recycleCNodeNow(cn)
			m := h.newMain()
			m.tn = b
			return m
		}
	}
	m := h.newMain()
	m.cn = cn
	return m
}

// toCompressed resurrects tombed children and contracts. The caller has
// frozen cn if it is live. Each resurrected (displaced) INode-edge box is
// appended to h.scratch: a TNode main is terminal, so a child seen tombed
// here stays tombed, and the caller may retire the recorded edges if (and
// only if) its GCAS wins. Re-reading child state after the GCAS would
// instead race with children that became tombed after the copy was taken —
// those are still reachable through the new CNode and must not be retired.
func (ct *Ctrie[K, V]) toCompressed(h *ctHandle[K, V], cn *ctCNode[K, V], lev uint, gen *ctGen) *ctMain[K, V] {
	h.scratch = h.scratch[:0]
	ncn := h.newCNode(len(cn.array), cn.bmp, gen)
	for i := range cn.array {
		b := cn.load(i)
		if b.in != nil {
			m := ct.gcasRead(b.in)
			if m != nil && m.tn != nil {
				ncn.setSlot(i, m.tn)
				h.scratch = append(h.scratch, b)
				continue
			}
		}
		ncn.setSlot(i, b)
	}
	return ct.toContracted(h, ncn, lev)
}

func (ct *Ctrie[K, V]) clean(h *ctHandle[K, V], in *ctINode[K, V], lev uint) {
	m := ct.gcasRead(in)
	if m != nil && m.cn != nil {
		ct.freezeIfLive(h, in, m.cn)
		nm := ct.toCompressed(h, m.cn, lev, in.gen)
		if ct.gcas(h, in, m, nm) {
			ct.retireDisplaced(h, in, m)
			ct.retireTombedEdges(h, in)
		}
		h.scratch = h.scratch[:0]
	}
}

// retireTombedEdges retires the INode edges recorded by toCompressed once
// the displacement won. The INode struct is retired when its generation
// matches (fresh INodes are never shared across generations, unlike mains,
// which copyToGen aliases into the renewed generation — so the terminal
// TNode main is only retired in the unversioned trie, where there is a
// single generation and no sharing is possible).
func (ct *Ctrie[K, V]) retireTombedEdges(h *ctHandle[K, V], in *ctINode[K, V]) {
	for _, b := range h.scratch {
		ct.retireBranchIf(h, in, b)
		if b.in.gen == in.gen {
			if ct.unversioned {
				if cm := ct.gcasRead(b.in); cm != nil && cm.tn != nil {
					h.retireMain(cm)
				}
			}
			h.retireINode(b.in)
		}
	}
}

// ctDual builds the subtree holding two colliding SNode boxes.
func (ct *Ctrie[K, V]) ctDual(h *ctHandle[K, V], x *ctBranch[K, V], y *ctBranch[K, V], lev uint, gen *ctGen) *ctMain[K, V] {
	if lev < 35 {
		xidx := (x.hc >> lev) & 0x1f
		yidx := (y.hc >> lev) & 0x1f
		bmp := (uint32(1) << xidx) | (uint32(1) << yidx)
		if xidx == yidx {
			sub := h.newINode(gen, ct.ctDual(h, x, y, lev+5, gen))
			ncn := h.newCNode(1, bmp, gen)
			ncn.setSlot(0, h.newINodeBranch(sub, gen))
			m := h.newMain()
			m.cn = ncn
			return m
		}
		ncn := h.newCNode(2, bmp, gen)
		if xidx < yidx {
			ncn.setSlot(0, x)
			ncn.setSlot(1, y)
		} else {
			ncn.setSlot(0, y)
			ncn.setSlot(1, x)
		}
		m := h.newMain()
		m.cn = ncn
		return m
	}
	return &ctMain[K, V]{ln: &ctLNode[K, V]{entries: []*ctBranch[K, V]{x, y}}}
}

// --- LNode helpers -------------------------------------------------------

func (ln *ctLNode[K, V]) get(k K) (V, bool) {
	for _, sn := range ln.entries {
		if sn.k == k {
			return sn.v, true
		}
	}
	var zero V
	return zero, false
}

func (ln *ctLNode[K, V]) inserted(sn *ctBranch[K, V]) *ctLNode[K, V] {
	out := &ctLNode[K, V]{entries: make([]*ctBranch[K, V], 0, len(ln.entries)+1)}
	replaced := false
	for _, e := range ln.entries {
		if e.k == sn.k {
			out.entries = append(out.entries, sn)
			replaced = true
		} else {
			out.entries = append(out.entries, e)
		}
	}
	if !replaced {
		out.entries = append(out.entries, sn)
	}
	return out
}

func (ln *ctLNode[K, V]) removed(k K) (*ctMain[K, V], V, bool) {
	idx := -1
	for i, e := range ln.entries {
		if e.k == k {
			idx = i
			break
		}
	}
	if idx == -1 {
		var zero V
		return nil, zero, false
	}
	old := ln.entries[idx].v
	rest := make([]*ctBranch[K, V], 0, len(ln.entries)-1)
	rest = append(rest, ln.entries[:idx]...)
	rest = append(rest, ln.entries[idx+1:]...)
	if len(rest) == 1 {
		return &ctMain[K, V]{tn: rest[0]}, old, true
	}
	return &ctMain[K, V]{ln: &ctLNode[K, V]{entries: rest}}, old, true
}

// --- public operations ---------------------------------------------------

// Get returns the value for k.
func (ct *Ctrie[K, V]) Get(k K) (V, bool) {
	hc := ct.hc(k)
	h := ct.pool.get()
	h.pin()
	var v V
	var ok bool
	for {
		r := ct.rdcssReadRoot(false)
		var restart bool
		v, ok, restart = ct.ilookup(h, r, k, hc, 0, nil, r.gen)
		if !restart {
			break
		}
	}
	h.unpin()
	ct.pool.put(h)
	return v, ok
}

// Contains reports whether k is present.
func (ct *Ctrie[K, V]) Contains(k K) bool {
	_, ok := ct.Get(k)
	return ok
}

// Put stores v under k and returns the previous value, if any.
func (ct *Ctrie[K, V]) Put(k K, v V) (V, bool) {
	if ct.readOnly {
		panic("conc: Put on read-only Ctrie snapshot")
	}
	hc := ct.hc(k)
	h := ct.pool.get()
	h.pin()
	var old V
	var had bool
	for {
		r := ct.rdcssReadRoot(false)
		var restart bool
		old, had, restart = ct.iinsert(h, r, k, v, hc, 0, nil, r.gen)
		if !restart {
			break
		}
	}
	h.unpin()
	ct.pool.put(h)
	return old, had
}

// Remove deletes k and returns the removed value, if any.
func (ct *Ctrie[K, V]) Remove(k K) (V, bool) {
	if ct.readOnly {
		panic("conc: Remove on read-only Ctrie snapshot")
	}
	hc := ct.hc(k)
	h := ct.pool.get()
	h.pin()
	var old V
	var had bool
	for {
		r := ct.rdcssReadRoot(false)
		var restart bool
		old, had, restart = ct.iremove(h, r, k, hc, 0, nil, r.gen)
		if !restart {
			break
		}
	}
	h.unpin()
	ct.pool.put(h)
	return old, had
}

// Snapshot returns a mutable snapshot, O(1) in the size of the trie. The
// snapshot and the original evolve independently; writers lazily copy the
// paths they touch. Proust uses one snapshot per transaction as the shadow
// copy. When in-place mutation is enabled the call additionally waits one
// epoch grace period — bounded by in-flight operation length — so writers
// that read the previous generation have drained before the snapshot is
// handed out; the snapshot is frozen from the caller's first read onward.
func (ct *Ctrie[K, V]) Snapshot() *Ctrie[K, V] {
	if ct.unversioned {
		panic("conc: Snapshot on unversioned Ctrie")
	}
	h := ct.pool.get()
	h.pin()
	for {
		rref := ct.rdcssReadRootRef(false)
		r := rref.in
		expMain := ct.gcasRead(r)
		if ct.rdcssRoot(rref, expMain, ct.copyToGen(r, &ctGen{})) {
			snap := &Ctrie[K, V]{hash: ct.hash, inplace: ct.inplace, pool: ct.pool}
			snap.root.Store(&rootRef[K, V]{in: ct.copyToGen(r, &ctGen{})})
			h.unpin()
			ct.pool.put(h)
			if ct.inplace {
				ct.pool.ebr.synchronize()
			}
			return snap
		}
	}
}

// ReadOnlySnapshot returns a read-only snapshot, O(1) in the size of the
// trie; mutating it panics. See Snapshot for the grace-period fence.
func (ct *Ctrie[K, V]) ReadOnlySnapshot() *Ctrie[K, V] {
	if ct.unversioned {
		panic("conc: ReadOnlySnapshot on unversioned Ctrie")
	}
	if ct.readOnly {
		return ct
	}
	h := ct.pool.get()
	h.pin()
	for {
		rref := ct.rdcssReadRootRef(false)
		r := rref.in
		expMain := ct.gcasRead(r)
		if ct.rdcssRoot(rref, expMain, ct.copyToGen(r, &ctGen{})) {
			snap := &Ctrie[K, V]{hash: ct.hash, readOnly: true, inplace: ct.inplace, pool: ct.pool}
			snap.root.Store(&rootRef[K, V]{in: r})
			h.unpin()
			ct.pool.put(h)
			if ct.inplace {
				ct.pool.ebr.synchronize()
			}
			return snap
		}
	}
}

// Range calls f over the map until f returns false. On a versioned trie it
// iterates a consistent read-only snapshot; on an unversioned trie it
// walks the live structure and is weakly consistent (like sync.Map): keys
// not mutated during the walk are each seen exactly once.
func (ct *Ctrie[K, V]) Range(f func(K, V) bool) {
	src := ct
	if !ct.unversioned {
		src = ct.ReadOnlySnapshot()
	}
	h := src.pool.get()
	h.pin()
	src.walk(h, src.rdcssReadRoot(false), f)
	h.unpin()
	src.pool.put(h)
}

// Len counts the entries; consistency matches Range.
func (ct *Ctrie[K, V]) Len() int {
	n := 0
	ct.Range(func(K, V) bool {
		n++
		return true
	})
	return n
}

func (ct *Ctrie[K, V]) walk(h *ctHandle[K, V], in *ctINode[K, V], f func(K, V) bool) bool {
	m := ct.gcasRead(in)
	switch {
	case m == nil:
		return true
	case m.cn != nil:
		for i := range m.cn.array {
			b := m.cn.load(i)
			if b == nil {
				continue
			}
			if b.in != nil {
				if !ct.walk(h, b.in, f) {
					return false
				}
			} else if !f(b.k, b.v) {
				return false
			}
		}
	case m.tn != nil:
		return f(m.tn.k, m.tn.v)
	case m.ln != nil:
		for _, sn := range m.ln.entries {
			if !f(sn.k, sn.v) {
				return false
			}
		}
	}
	return true
}

// --- core recursive operations -------------------------------------------

func (ct *Ctrie[K, V]) ilookup(h *ctHandle[K, V], in *ctINode[K, V], k K, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			return zero, false, false
		}
		b := cn.load(pos)
		if b.in != nil {
			if ct.readOnly || startgen == b.in.gen {
				return ct.ilookup(h, b.in, k, hc, lev+5, in, startgen)
			}
			ct.freezeIfLive(h, in, cn)
			nm := h.newMain()
			nm.cn = ct.renewed(h, cn, startgen)
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				return ct.ilookup(h, in, k, hc, lev, parent, startgen)
			}
			return zero, false, true
		}
		if b.hc == hc && b.k == k {
			return b.v, true, false
		}
		return zero, false, false
	case m.tn != nil:
		if ct.readOnly {
			if m.tn.hc == hc && m.tn.k == k {
				return m.tn.v, true, false
			}
			return zero, false, false
		}
		ct.clean(h, parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		v, ok := m.ln.get(k)
		return v, ok, false
	}
	return zero, false, true
}

func (ct *Ctrie[K, V]) iinsert(h *ctHandle[K, V], in *ctINode[K, V], k K, v V, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			// New key: the bitmap changes, so this is always a copy.
			ct.freezeIfLive(h, in, cn)
			src := cn
			if cn.gen != in.gen {
				src = ct.renewed(h, cn, in.gen)
			}
			nm := h.newMain()
			nm.cn = ct.cowInserted(h, src, pos, flag, h.newSNode(hc, k, v, in.gen), in.gen)
			if src != cn {
				h.recycleCNodeNow(src)
			}
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				return zero, false, false
			}
			return zero, false, true
		}
		raw := cn.loadRaw(pos)
		b := raw
		frozen := false
		if b != nil && b.fz != nil {
			b, frozen = b.fz, true
		}
		switch {
		case b.in != nil:
			if startgen == b.in.gen {
				return ct.iinsert(h, b.in, k, v, hc, lev+5, in, startgen)
			}
			ct.freezeIfLive(h, in, cn)
			nm := h.newMain()
			nm.cn = ct.renewed(h, cn, startgen)
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				return ct.iinsert(h, in, k, v, hc, lev, parent, startgen)
			}
			return zero, false, true
		case b.hc == hc && b.k == k:
			// Key present: a pure value update. When the CNode carries the
			// current generation and the slot is not frozen, CAS the slot
			// in place — a displacement racing with us must freeze this
			// very word first, so the CAS itself decides the race.
			if ct.inplace && !frozen && cn.gen == in.gen && in.gen == startgen {
				nb := h.newSNode(hc, k, v, in.gen)
				if cn.casSlot(pos, raw, nb) {
					ct.retireBranchIf(h, in, b)
					return b.v, true, false
				}
				h.recycleBranchNow(nb)
				return zero, false, true
			}
			ct.freezeIfLive(h, in, cn)
			src := cn
			if cn.gen != in.gen {
				src = ct.renewed(h, cn, in.gen)
			}
			nm := h.newMain()
			nm.cn = ct.cowUpdated(h, src, pos, h.newSNode(hc, k, v, in.gen), in.gen)
			if src != cn {
				h.recycleCNodeNow(src)
			}
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				ct.retireBranchIf(h, in, b)
				return b.v, true, false
			}
			return zero, false, true
		default:
			// Hash path collision: split into a subtree.
			ct.freezeIfLive(h, in, cn)
			src := cn
			if cn.gen != in.gen {
				src = ct.renewed(h, cn, in.gen)
			}
			nsn := h.newSNode(hc, k, v, in.gen)
			nin := h.newINode(in.gen, ct.ctDual(h, b, nsn, lev+5, in.gen))
			nm := h.newMain()
			nm.cn = ct.cowUpdated(h, src, pos, h.newINodeBranch(nin, in.gen), in.gen)
			if src != cn {
				h.recycleCNodeNow(src)
			}
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				return zero, false, false
			}
			return zero, false, true
		}
	case m.tn != nil:
		ct.clean(h, parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		old, had := m.ln.get(k)
		nln := m.ln.inserted(h.newSNode(hc, k, v, in.gen))
		nm := h.newMain()
		nm.ln = nln
		if ct.gcas(h, in, m, nm) {
			return old, had, false
		}
		return zero, false, true
	}
	return zero, false, true
}

func (ct *Ctrie[K, V]) iremove(h *ctHandle[K, V], in *ctINode[K, V], k K, hc uint32, lev uint, parent *ctINode[K, V], startgen *ctGen) (V, bool, bool) {
	var zero V
	m := ct.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := ctFlagPos(hc, lev, cn.bmp)
		if cn.bmp&flag == 0 {
			return zero, false, false
		}
		var (
			res     V
			removed bool
			restart bool
		)
		b := cn.load(pos)
		if b.in != nil {
			if startgen == b.in.gen {
				res, removed, restart = ct.iremove(h, b.in, k, hc, lev+5, in, startgen)
			} else {
				ct.freezeIfLive(h, in, cn)
				nm := h.newMain()
				nm.cn = ct.renewed(h, cn, startgen)
				if ct.gcas(h, in, m, nm) {
					ct.retireDisplaced(h, in, m)
					res, removed, restart = ct.iremove(h, in, k, hc, lev, parent, startgen)
				} else {
					restart = true
				}
			}
		} else if b.hc == hc && b.k == k {
			ct.freezeIfLive(h, in, cn)
			nm := ct.toContracted(h, ct.cowRemoved(h, cn, pos, flag, in.gen), lev)
			if ct.gcas(h, in, m, nm) {
				ct.retireDisplaced(h, in, m)
				ct.retireBranchIf(h, in, b)
				res, removed = b.v, true
			} else {
				restart = true
			}
		}
		if restart {
			return zero, false, true
		}
		if removed && parent != nil {
			cur := ct.gcasRead(in)
			if cur != nil && cur.tn != nil {
				ct.cleanParent(h, parent, in, hc, lev-5, startgen)
			}
		}
		return res, removed, false
	case m.tn != nil:
		ct.clean(h, parent, lev-5)
		return zero, false, true
	case m.ln != nil:
		nmain, old, had := m.ln.removed(k)
		if !had {
			return zero, false, false
		}
		if ct.gcas(h, in, m, nmain) {
			return old, true, false
		}
		return zero, false, true
	}
	return zero, false, true
}

// cleanParent unlinks a tombed INode from its parent CNode.
func (ct *Ctrie[K, V]) cleanParent(h *ctHandle[K, V], parent, in *ctINode[K, V], hc uint32, plev uint, startgen *ctGen) {
	for {
		pm := ct.gcasRead(parent)
		if pm == nil || pm.cn == nil {
			return
		}
		cn := pm.cn
		flag, pos := ctFlagPos(hc, plev, cn.bmp)
		if cn.bmp&flag == 0 {
			return
		}
		sub := cn.load(pos)
		if sub == nil || sub.in != in {
			return
		}
		m := ct.gcasRead(in)
		if m == nil || m.tn == nil {
			return
		}
		ct.freezeIfLive(h, parent, cn)
		nm := ct.toContracted(h, ct.cowUpdated(h, cn, pos, m.tn, parent.gen), plev)
		if ct.gcas(h, parent, pm, nm) {
			ct.retireDisplaced(h, parent, pm)
			// The unlinked INode and its edge box are unreachable now; a
			// TNode main is terminal, so in cannot have un-tombed. The main
			// itself may be shared with older generations via copyToGen, so
			// it is only retired when generations cannot differ (see
			// retireTombedEdges).
			ct.retireBranchIf(h, parent, sub)
			if in.gen == parent.gen {
				if ct.unversioned {
					h.retireMain(m)
				}
				h.retireINode(in)
			}
			return
		}
		if ct.rdcssReadRoot(false).gen != startgen {
			return
		}
	}
}
