package conc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEBRPinBlocksAdvance pins a participant and checks the advancement
// rule directly: a participant pinned at the current epoch never blocks an
// advance, a participant pinned at an older epoch always does.
func TestEBRPinBlocksAdvance(t *testing.T) {
	e := newEBR()
	s := e.register()

	s.pin(&e.global)
	if !e.tryAdvance() {
		t.Fatal("advance failed with the only participant pinned at the current epoch")
	}
	// s is now pinned one epoch behind.
	if e.tryAdvance() {
		t.Fatal("advance succeeded past a participant pinned at an older epoch")
	}
	s.unpin()
	if !e.tryAdvance() {
		t.Fatal("advance failed with no pinned participants")
	}
}

// TestEBRGraceCounting walks one retire-reuse cycle by hand: an object
// retired at epoch e must not become reusable before the global epoch
// reaches e+ebrGrace.
func TestEBRGraceCounting(t *testing.T) {
	e := newEBR()
	retiredAt := e.global.Load()
	for i := 0; i < ebrGrace; i++ {
		if got := e.global.Load(); got >= retiredAt+ebrGrace {
			t.Fatalf("epoch %d already past grace after %d advances", got, i)
		}
		if !e.tryAdvance() {
			t.Fatal("advance failed with no participants")
		}
	}
	if got := e.global.Load(); got != retiredAt+ebrGrace {
		t.Fatalf("global epoch = %d after %d advances, want %d", got, ebrGrace, retiredAt+ebrGrace)
	}
}

// TestEBRSynchronizeWaitsForPinned checks that synchronize cannot return
// while a participant pinned before the call is still pinned, and returns
// promptly once it unpins.
func TestEBRSynchronizeWaitsForPinned(t *testing.T) {
	e := newEBR()
	s := e.register()
	s.pin(&e.global)
	// One advance can still succeed (s is at the current epoch); from then
	// on s is stale and pins the epoch in place, so synchronize must block.
	var done atomic.Bool
	go func() {
		e.synchronize()
		done.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if done.Load() {
		t.Fatal("synchronize returned while a participant stayed pinned")
	}
	s.unpin()
	deadline := time.After(5 * time.Second)
	for !done.Load() {
		select {
		case <-deadline:
			t.Fatal("synchronize did not return after the participant unpinned")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestEBRConcurrentPinUnpin stresses pin/unpin against a synchronizer; the
// invariant under test is that synchronize always terminates (participants
// that keep re-pinning pick up the new epoch and so never wedge it) while
// the epoch only moves forward. Run with -race to check the announcement
// protocol's memory ordering.
func TestEBRConcurrentPinUnpin(t *testing.T) {
	e := newEBR()
	const workers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.register()
			for !stop.Load() {
				s.pin(&e.global)
				s.unpin()
			}
		}()
	}
	start := e.global.Load()
	for i := 0; i < 50; i++ {
		e.synchronize()
	}
	stop.Store(true)
	wg.Wait()
	if got := e.global.Load(); got < start+50*ebrGrace {
		t.Fatalf("global epoch advanced to %d, want at least %d", got, start+50*ebrGrace)
	}
}
