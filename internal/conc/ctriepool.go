package conc

import (
	"sync"
)

// ctriepool.go gives the Ctrie an allocator cache on top of the epoch
// facility in epoch.go. Every public Ctrie operation borrows a ctHandle
// from the structure's ctPool: the handle carries the participant's epoch
// slot, three rotating retire bins (one per epoch residue class), and
// typed freelists that node allocation is served from. Displaced nodes are
// retired into the bin tagged with the current epoch; once the global
// epoch has advanced ebrGrace times past a bin's tag, its contents move to
// the freelists and are handed out again. Nodes that were never published
// (a losing GCAS copy) skip the grace period entirely via recycle*Now.
//
// Handles are recycled through a sync.Pool, so the number of registered
// epoch slots is bounded by the peak number of concurrent operations, and
// all freelist traffic is handle-local — no locks, no cross-goroutine
// sharing except through the sync.Pool and the epoch protocol itself.

const (
	// ctAdvanceEvery is the pin cadence at which a handle volunteers to
	// advance the epoch and drain its expired bins.
	ctAdvanceEvery = 32

	// Freelist caps; beyond these, recycled nodes are dropped to the GC.
	ctMainCap   = 1024
	ctBranchCap = 4096
	ctCNodeCap  = 64 // per array length class
	ctINodeCap  = 256
)

// ctBin is one epoch residue class of retired nodes.
type ctBin[K comparable, V any] struct {
	epoch    uint64
	mains    []*ctMain[K, V]
	cnodes   []*ctCNode[K, V]
	branches []*ctBranch[K, V]
	ins      []*ctINode[K, V]
}

// ctPool is the per-structure reclamation domain + handle cache. A Ctrie
// and every snapshot derived from it share one ctPool, because retired
// nodes may still be traversed by readers of either.
type ctPool[K comparable, V any] struct {
	ebr     *ebr
	handles sync.Pool
}

func newCtPool[K comparable, V any]() *ctPool[K, V] {
	p := &ctPool[K, V]{ebr: newEBR()}
	p.handles.New = func() any {
		return &ctHandle[K, V]{pool: p, slot: p.ebr.register()}
	}
	return p
}

func (p *ctPool[K, V]) get() *ctHandle[K, V] {
	return p.handles.Get().(*ctHandle[K, V])
}

func (p *ctPool[K, V]) put(h *ctHandle[K, V]) {
	p.handles.Put(h)
}

// ctHandle is one participant's view of the pool.
type ctHandle[K comparable, V any] struct {
	pool *ctPool[K, V]
	slot *ebrSlot
	ops  uint64

	bins [3]ctBin[K, V]

	// Freelists (allocator cache). cnodes is indexed by array length.
	mains    []*ctMain[K, V]
	branches []*ctBranch[K, V]
	cnodes   [33][]*ctCNode[K, V]
	ins      []*ctINode[K, V]

	// scratch collects the INode-edge boxes a toCompressed pass displaced,
	// so clean can retire them only if its GCAS wins (see ctrie.go).
	scratch []*ctBranch[K, V]
}

func (h *ctHandle[K, V]) pin() {
	h.slot.pin(&h.pool.ebr.global)
	h.ops++
	if h.ops%ctAdvanceEvery == 0 {
		h.pool.ebr.tryAdvance()
		h.drainExpired()
	}
}

func (h *ctHandle[K, V]) unpin() {
	h.slot.unpin()
}

// --- allocation ---------------------------------------------------------

func (h *ctHandle[K, V]) newMain() *ctMain[K, V] {
	if n := len(h.mains); n > 0 {
		m := h.mains[n-1]
		h.mains = h.mains[:n-1]
		return m
	}
	return &ctMain[K, V]{}
}

// newCNode returns a CNode whose array has length n, recycled if possible.
// Recycled slots may hold stale pointers (bounded by the freelist caps);
// every CNode constructor overwrites every slot before publication.
func (h *ctHandle[K, V]) newCNode(n int, bmp uint32, gen *ctGen) *ctCNode[K, V] {
	if ln := len(h.cnodes[n]); ln > 0 {
		cn := h.cnodes[n][ln-1]
		h.cnodes[n] = h.cnodes[n][:ln-1]
		cn.bmp, cn.gen = bmp, gen
		return cn
	}
	return &ctCNode[K, V]{bmp: bmp, gen: gen, array: make([]ctSlot[K, V], n)}
}

func (h *ctHandle[K, V]) newINode(gen *ctGen, m *ctMain[K, V]) *ctINode[K, V] {
	if n := len(h.ins); n > 0 {
		in := h.ins[n-1]
		h.ins = h.ins[:n-1]
		in.gen = gen
		in.main.Store(m)
		return in
	}
	return newCtINode(gen, m)
}

func (h *ctHandle[K, V]) newBranch() *ctBranch[K, V] {
	if n := len(h.branches); n > 0 {
		b := h.branches[n-1]
		h.branches = h.branches[:n-1]
		return b
	}
	return &ctBranch[K, V]{}
}

func (h *ctHandle[K, V]) newSNode(hc uint32, k K, v V, gen *ctGen) *ctBranch[K, V] {
	b := h.newBranch()
	b.hc, b.k, b.v, b.gen = hc, k, v, gen
	return b
}

func (h *ctHandle[K, V]) newINodeBranch(in *ctINode[K, V], gen *ctGen) *ctBranch[K, V] {
	b := h.newBranch()
	b.in, b.gen = in, gen
	return b
}

// newFrozen wraps b in a freeze marker (see ctrie.go: displacement
// protocol). Readers see the wrapped payload through fz.
func (h *ctHandle[K, V]) newFrozen(b *ctBranch[K, V]) *ctBranch[K, V] {
	f := h.newBranch()
	f.fz = b
	return f
}

// --- retirement ---------------------------------------------------------

// bin returns the retire bin for the current epoch, draining the residue
// class first if it still holds a fully-aged previous cohort.
func (h *ctHandle[K, V]) bin() *ctBin[K, V] {
	e := h.pool.ebr.global.Load()
	b := &h.bins[e%3]
	if b.epoch != e {
		// Same residue class, older epoch: tags differ by a multiple of 3,
		// so the old cohort is at least ebrGrace epochs stale — reusable.
		h.drainBin(b)
		b.epoch = e
	}
	return b
}

func (h *ctHandle[K, V]) retireMain(m *ctMain[K, V]) {
	b := h.bin()
	b.mains = append(b.mains, m)
}

func (h *ctHandle[K, V]) retireCNode(cn *ctCNode[K, V]) {
	b := h.bin()
	b.cnodes = append(b.cnodes, cn)
}

func (h *ctHandle[K, V]) retireBranch(br *ctBranch[K, V]) {
	b := h.bin()
	b.branches = append(b.branches, br)
}

func (h *ctHandle[K, V]) retireINode(in *ctINode[K, V]) {
	b := h.bin()
	b.ins = append(b.ins, in)
}

// drainExpired moves every fully-aged bin to the freelists.
func (h *ctHandle[K, V]) drainExpired() {
	g := h.pool.ebr.global.Load()
	for i := range h.bins {
		b := &h.bins[i]
		if b.epoch+ebrGrace <= g {
			h.drainBin(b)
		}
	}
}

func (h *ctHandle[K, V]) drainBin(b *ctBin[K, V]) {
	for _, m := range b.mains {
		h.recycleMainNow(m)
	}
	for _, cn := range b.cnodes {
		h.recycleCNodeNow(cn)
	}
	for _, br := range b.branches {
		h.recycleBranchNow(br)
	}
	for _, in := range b.ins {
		h.recycleINodeNow(in)
	}
	b.mains = b.mains[:0]
	b.cnodes = b.cnodes[:0]
	b.branches = b.branches[:0]
	b.ins = b.ins[:0]
}

// --- immediate recycling (never-published or fully-aged nodes) ----------

func (h *ctHandle[K, V]) recycleMainNow(m *ctMain[K, V]) {
	if len(h.mains) >= ctMainCap {
		return
	}
	m.cn, m.tn, m.ln, m.failed = nil, nil, nil, nil
	m.prev.Store(nil)
	h.mains = append(h.mains, m)
}

func (h *ctHandle[K, V]) recycleCNodeNow(cn *ctCNode[K, V]) {
	n := len(cn.array)
	if len(h.cnodes[n]) >= ctCNodeCap {
		return
	}
	cn.gen = nil
	h.cnodes[n] = append(h.cnodes[n], cn)
}

func (h *ctHandle[K, V]) recycleINodeNow(in *ctINode[K, V]) {
	if len(h.ins) >= ctINodeCap {
		return
	}
	in.gen = nil
	in.main.Store(nil)
	h.ins = append(h.ins, in)
}

func (h *ctHandle[K, V]) recycleBranchNow(b *ctBranch[K, V]) {
	if len(h.branches) >= ctBranchCap {
		return
	}
	var zk K
	var zv V
	b.in, b.fz, b.gen, b.hc, b.k, b.v = nil, nil, nil, 0, zk, zv
	h.branches = append(h.branches, b)
}
