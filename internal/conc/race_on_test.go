//go:build race

package conc

// raceEnabled reports whether the race detector is compiled in; iteration
// counts of the churn-heavy pool tests are scaled down under the detector's
// ~10x slowdown so the default race matrix stays fast (the dedicated CI
// soak step restores the volume via -count).
const raceEnabled = true
