package conc

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHashMapPoolRecycledNodesFresh poisons hashmap chain nodes with junk
// before retiring them and checks, in the style of the Ctrie and skiplist
// pool tests, that a node handed back out by the allocator is
// indistinguishable from a freshly allocated one — no stale hash, key, value
// or chain pointer.
func TestHashMapPoolRecycledNodesFresh(t *testing.T) {
	m := NewHashMap[int, int](IntHasher)
	h := m.pool.Get()

	junk := &hmNode[int, int]{hash: 0xbad}
	poisoned := make(map[*hmNode[int, int]]bool)
	for i := 0; i < 64; i++ {
		n := h.Alloc()
		n.hash = 0xdeadbeef
		n.key = 0xdead + i
		n.val = -i
		n.next.Store(junk)
		poisoned[n] = true
		h.Retire(n)
	}
	// Age the bin out: each advance re-keys bin(); after ebrGrace+1 epochs
	// the cohort's residue class is revisited and drained.
	for i := 0; i < 3*(ebrGrace+1); i++ {
		if !m.pool.ebr.tryAdvance() {
			t.Fatal("tryAdvance failed with no pinned participants")
		}
		h.Pin()
		h.Unpin()
	}
	h.drainExpired()

	recycled := 0
	for i := 0; i < 128; i++ {
		n := h.Alloc()
		if !poisoned[n] {
			continue
		}
		recycled++
		if n.hash != 0 || n.key != 0 || n.val != 0 || n.next.Load() != nil {
			t.Fatalf("recycled node not fresh: hash=%#x key=%d val=%d next=%p",
				n.hash, n.key, n.val, n.next.Load())
		}
	}
	if recycled == 0 {
		t.Fatal("no poisoned node came back through the allocator; the test exercised nothing")
	}
}

// TestHashMapRecycledStateDeterministic runs the same deterministic script
// against a cold map and a map whose node pool has been heavily cycled, and
// requires identical observable behavior — any state bleeding through a
// recycled chain node would diverge the transcripts.
func TestHashMapRecycledStateDeterministic(t *testing.T) {
	script := func(m *HashMap[int, int]) []int {
		var out []int
		for i := 0; i < 500; i++ {
			k := (i * 7) % 64
			switch i % 4 {
			case 0:
				old, had := m.Put(k, i)
				out = append(out, k, old, boolInt(had))
			case 1:
				v, ok := m.Get(k)
				out = append(out, k, v, boolInt(ok))
			case 2:
				v, stored := m.PutIfAbsent(k, i)
				out = append(out, k, v, boolInt(stored))
			case 3:
				old, had := m.Remove(k)
				out = append(out, k, old, boolInt(had))
			}
		}
		out = append(out, m.Len())
		return out
	}

	cold := NewHashMap[int, int](IntHasher)
	want := script(cold)

	warm := NewHashMap[int, int](IntHasher)
	rng := rand.New(rand.NewSource(99))
	warmup := 100000
	if raceEnabled {
		warmup = 20000
	}
	for i := 0; i < warmup; i++ { // cycle the node pool hard, forcing growth too
		k := rng.Intn(512)
		if rng.Intn(2) == 0 {
			warm.Put(k, i)
		} else {
			warm.Remove(k)
		}
	}
	for k := 0; k < 512; k++ {
		warm.Remove(k)
	}
	got := script(warm)
	if len(got) != len(want) {
		t.Fatalf("script transcript length diverged: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("script diverged on a pool-warmed hashmap: recycled state leaked")
		}
	}
}

// TestHashMapGrowKeepsEntries crams enough keys into a 1-stripe map to force
// several bucket-table doublings and checks nothing is lost or duplicated
// across the table swaps.
func TestHashMapGrowKeepsEntries(t *testing.T) {
	m := NewHashMapStripes[int, int](IntHasher, 1)
	const n = 2000
	for i := 0; i < n; i++ {
		m.Put(i, i*3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v after growth", i, v, ok)
		}
	}
	seen := make(map[int]int, n)
	m.Range(func(k, v int) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Range yielded key %d twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d entries, want %d", len(seen), n)
	}
	if len(m.stripes) != 1 {
		t.Fatalf("1-stripe map has %d stripes", len(m.stripes))
	}
	if tbl := m.stripes[0].table.Load(); len(tbl.buckets) <= hmInitialBuckets {
		t.Fatalf("bucket table never grew: %d buckets", len(tbl.buckets))
	}
}

// TestHashMapPoolChurnReaders hammers a small key range with writers
// (Put/Remove/Update churn that recycles nodes constantly) while lock-free
// readers Get and Range through the same chains. Under -race this exercises
// the pin/retire/drain happens-before chain: a reader dereferencing a node
// recycled too early would trip the detector or observe a foreign value.
func TestHashMapPoolChurnReaders(t *testing.T) {
	m := NewHashMapStripes[int, int](IntHasher, 4)
	const writers, readers = 4, 4
	iters := 20000
	if raceEnabled {
		iters = 5000
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := rng.Intn(32)
				switch rng.Intn(3) {
				case 0:
					m.Put(k, k)
				case 1:
					m.Remove(k)
				case 2:
					m.Update(k, func(v int, ok bool) (int, bool) {
						return k, !ok || v == k
					})
				}
			}
		}(int64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if rng.Intn(16) == 0 {
					m.Range(func(k, v int) bool {
						if v != k {
							t.Errorf("Range saw foreign value %d under key %d", v, k)
							return false
						}
						return true
					})
					continue
				}
				k := rng.Intn(32)
				if v, ok := m.Get(k); ok && v != k {
					t.Errorf("Get(%d) returned foreign value %d", k, v)
					return
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
}
