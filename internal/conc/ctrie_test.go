package conc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestCtrie() *Ctrie[int, int] {
	return NewCtrie[int, int](IntHasher)
}

// badHasher forces full 32-bit collisions to exercise LNodes.
func badHasher(k int) uint64 { return 42 }

func TestCtrieBasics(t *testing.T) {
	ct := newTestCtrie()
	if _, ok := ct.Get(1); ok {
		t.Fatal("empty trie should miss")
	}
	if _, had := ct.Put(1, 10); had {
		t.Fatal("Put on empty returned old value")
	}
	if v, ok := ct.Get(1); !ok || v != 10 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if old, had := ct.Put(1, 20); !had || old != 10 {
		t.Fatalf("Put replace = %d,%v", old, had)
	}
	if !ct.Contains(1) || ct.Contains(2) {
		t.Fatal("Contains mismatch")
	}
	if old, had := ct.Remove(1); !had || old != 20 {
		t.Fatalf("Remove = %d,%v", old, had)
	}
	if _, had := ct.Remove(1); had {
		t.Fatal("second Remove should miss")
	}
	if ct.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ct.Len())
	}
}

func TestCtrieManyKeys(t *testing.T) {
	ct := newTestCtrie()
	const n = 10000
	for i := 0; i < n; i++ {
		ct.Put(i, i*2)
	}
	if ct.Len() != n {
		t.Fatalf("Len = %d, want %d", ct.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := ct.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, ok := ct.Remove(i); !ok {
			t.Fatalf("Remove(%d) missed", i)
		}
	}
	if ct.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", ct.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := ct.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestCtrieHashCollisionsLNode(t *testing.T) {
	ct := NewCtrie[int, int](badHasher)
	const n = 40
	for i := 0; i < n; i++ {
		ct.Put(i, i)
	}
	if ct.Len() != n {
		t.Fatalf("Len = %d, want %d", ct.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := ct.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v (LNode lookup)", i, v, ok)
		}
	}
	// Replacement inside an LNode.
	if old, had := ct.Put(7, 700); !had || old != 7 {
		t.Fatalf("LNode replace = %d,%v", old, had)
	}
	if v, _ := ct.Get(7); v != 700 {
		t.Fatalf("Get(7) = %d, want 700", v)
	}
	// Removal down to a single entry entombs.
	for i := 0; i < n-1; i++ {
		if _, ok := ct.Remove(i); !ok {
			t.Fatalf("Remove(%d) missed", i)
		}
	}
	if v, ok := ct.Get(n - 1); !ok || v != n-1 {
		t.Fatalf("final entry Get = %d,%v", v, ok)
	}
	if ct.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ct.Len())
	}
}

func TestCtrieVsOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		ct := newTestCtrie()
		oracle := make(map[int]int)
		for i, op := range ops {
			k := int(op % 128)
			switch op % 3 {
			case 0:
				gotOld, gotHad := ct.Put(k, i)
				wantOld, wantHad := oracle[k]
				oracle[k] = i
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 1:
				gotOld, gotHad := ct.Remove(k)
				wantOld, wantHad := oracle[k]
				delete(oracle, k)
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 2:
				got, gotOK := ct.Get(k)
				want, wantOK := oracle[k]
				if gotOK != wantOK || (wantOK && got != want) {
					return false
				}
			}
		}
		return ct.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCtrieSnapshotIsolation(t *testing.T) {
	ct := newTestCtrie()
	for i := 0; i < 100; i++ {
		ct.Put(i, i)
	}
	snap := ct.Snapshot()

	// Mutations of the original do not affect the snapshot.
	ct.Put(5, 500)
	ct.Remove(6)
	if v, _ := snap.Get(5); v != 5 {
		t.Fatalf("snapshot Get(5) = %d, want 5", v)
	}
	if !snap.Contains(6) {
		t.Fatal("snapshot must retain key 6")
	}

	// Mutations of the snapshot do not affect the original.
	snap.Put(7, 700)
	snap.Remove(8)
	if v, _ := ct.Get(7); v != 7 {
		t.Fatalf("original Get(7) = %d, want 7", v)
	}
	if !ct.Contains(8) {
		t.Fatal("original must retain key 8")
	}
	if v, _ := snap.Get(7); v != 700 {
		t.Fatalf("snapshot Get(7) = %d, want 700", v)
	}
	if snap.Contains(8) {
		t.Fatal("snapshot must have dropped key 8")
	}
	if snap.Len() != 99 {
		t.Fatalf("snapshot Len = %d, want 99 (100 - removed key 8)", snap.Len())
	}
}

func TestCtrieReadOnlySnapshot(t *testing.T) {
	ct := newTestCtrie()
	for i := 0; i < 50; i++ {
		ct.Put(i, i)
	}
	ro := ct.ReadOnlySnapshot()
	ct.Put(0, 999)
	if v, _ := ro.Get(0); v != 0 {
		t.Fatalf("read-only snapshot Get(0) = %d, want 0", v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put on read-only snapshot must panic")
			}
		}()
		ro.Put(1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Remove on read-only snapshot must panic")
			}
		}()
		ro.Remove(1)
	}()
	if ro.ReadOnlySnapshot() != ro {
		t.Error("ReadOnlySnapshot of a read-only trie should return itself")
	}
}

func TestCtrieRangeConsistent(t *testing.T) {
	ct := newTestCtrie()
	for i := 0; i < 64; i++ {
		ct.Put(i, i)
	}
	seen := make(map[int]int)
	ct.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("Range visited %d entries, want 64", len(seen))
	}
	// Early stop.
	n := 0
	ct.Range(func(int, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early-stop Range visited %d, want 10", n)
	}
}

func TestCtrieConcurrentDisjoint(t *testing.T) {
	ct := newTestCtrie()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * perG
			for i := 0; i < perG; i++ {
				ct.Put(base+i, base+i)
			}
			for i := 0; i < perG; i++ {
				if v, ok := ct.Get(base + i); !ok || v != base+i {
					t.Errorf("Get(%d) = %d,%v", base+i, v, ok)
					return
				}
			}
			for i := 0; i < perG; i += 2 {
				if _, ok := ct.Remove(base + i); !ok {
					t.Errorf("Remove(%d) missed", base+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ct.Len() != goroutines*perG/2 {
		t.Fatalf("Len = %d, want %d", ct.Len(), goroutines*perG/2)
	}
}

func TestCtrieConcurrentMixedWithSnapshots(t *testing.T) {
	ct := newTestCtrie()
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1500; i++ {
				k := rng.Intn(128)
				switch rng.Intn(4) {
				case 0:
					ct.Put(k, k)
				case 1:
					ct.Remove(k)
				case 2:
					if v, ok := ct.Get(k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
						return
					}
				case 3:
					snap := ct.Snapshot()
					if v, ok := snap.Get(k); ok && v != k {
						t.Errorf("snapshot Get(%d) = %d", k, v)
						return
					}
					snap.Put(k, k) // isolated; must not affect ct
				}
			}
		}(int64(g))
	}
	wg.Wait()
	ct.Range(func(k, v int) bool {
		if k != v {
			t.Errorf("entry %d=%d violates workload invariant", k, v)
			return false
		}
		return true
	})
}

// TestCtrieSnapshotLinearizability: a snapshot taken during concurrent
// writes must be a consistent cut — for a writer that performs paired
// updates (k and k+1000 together), a snapshot must contain both or neither.
func TestCtrieSnapshotPairedWrites(t *testing.T) {
	ct := newTestCtrie()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Not atomic as a pair — the Ctrie alone cannot provide that
			// (Proust exists to add it) — but each snapshot must still be
			// an atomic cut of the *individual* linearizable operations.
			ct.Put(i, i)
			ct.Put(i+100000, i)
			i++
		}
	}()
	for n := 0; n < 200; n++ {
		snap := ct.ReadOnlySnapshot()
		// Within one read-only snapshot, two Gets of the same key agree.
		for k := 0; k < 20; k++ {
			v1, ok1 := snap.Get(k)
			v2, ok2 := snap.Get(k)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("snapshot not stable: Get(%d) = (%d,%v) then (%d,%v)", k, v1, ok1, v2, ok2)
			}
		}
	}
	close(stop)
	wg.Wait()
}
