package conc

import (
	"sync"
	"sync/atomic"
)

const skipMaxLevel = 24

// SkipListMap is a thread-safe ordered map implemented as a lazy skip list
// (Herlihy, Lev, Luchangco, Shavit): lookups are lock-free, updates lock
// only the predecessor nodes and validate before linking. It backs the
// ordered Proustian Set.
type SkipListMap[K any, V any] struct {
	cmp  func(a, b K) int
	head *skipNode[K, V]
	tail *skipNode[K, V]
	size atomic.Int64
	seed atomic.Uint64
	// pool is the map's epoch-reclamation domain (skippool.go): removed
	// nodes and displaced value boxes are retired through it and reused
	// once no traversal can still observe them.
	pool *slPool[K, V]
}

type skipNode[K any, V any] struct {
	key      K
	sentinel int8 // -1 head, +1 tail, 0 regular
	value    atomic.Pointer[box[V]]
	next     []atomic.Pointer[skipNode[K, V]]
	topLayer int

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
}

type box[V any] struct{ v V }

// NewSkipListMap creates a map ordered by cmp (negative, zero, positive for
// a<b, a==b, a>b).
func NewSkipListMap[K any, V any](cmp func(a, b K) int) *SkipListMap[K, V] {
	head := newSkipNode[K, V](skipMaxLevel - 1)
	tail := newSkipNode[K, V](skipMaxLevel - 1)
	head.sentinel = -1
	tail.sentinel = 1
	head.fullyLinked.Store(true)
	tail.fullyLinked.Store(true)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	m := &SkipListMap[K, V]{cmp: cmp, head: head, tail: tail, pool: newSlPool[K, V]()}
	m.seed.Store(0x2545f4914f6cdd1d)
	return m
}

func newSkipNode[K any, V any](topLayer int) *skipNode[K, V] {
	return &skipNode[K, V]{
		next:     make([]atomic.Pointer[skipNode[K, V]], topLayer+1),
		topLayer: topLayer,
	}
}

// compareNode orders a key against a node, treating sentinels as ±infinity.
func (m *SkipListMap[K, V]) compareNode(k K, n *skipNode[K, V]) int {
	switch n.sentinel {
	case -1:
		return 1
	case 1:
		return -1
	default:
		return m.cmp(k, n.key)
	}
}

// findNode fills preds/succs per layer and returns the highest layer at
// which a node with the key was found, or -1.
func (m *SkipListMap[K, V]) findNode(k K, preds, succs []*skipNode[K, V]) int {
	found := -1
	pred := m.head
	for layer := skipMaxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for m.compareNode(k, curr) > 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
		if found == -1 && m.compareNode(k, curr) == 0 {
			found = layer
		}
		preds[layer] = pred
		succs[layer] = curr
	}
	return found
}

// Get returns the value mapped to k.
func (m *SkipListMap[K, V]) Get(k K) (V, bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	var preds, succs [skipMaxLevel]*skipNode[K, V]
	found := m.findNode(k, preds[:], succs[:])
	if found == -1 {
		var zero V
		return zero, false
	}
	n := succs[found]
	if n.fullyLinked.Load() && !n.marked.Load() {
		return n.value.Load().v, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *SkipListMap[K, V]) Contains(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Put stores v under k and returns the previous value, if any.
func (m *SkipListMap[K, V]) Put(k K, v V) (V, bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	var preds, succs [skipMaxLevel]*skipNode[K, V]
	for {
		found := m.findNode(k, preds[:], succs[:])
		if found != -1 {
			n := succs[found]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					procSpin()
				}
				// Lock the node so a concurrent Remove cannot discard the
				// update unnoticed.
				n.mu.Lock()
				if n.marked.Load() {
					n.mu.Unlock()
					continue
				}
				old := n.value.Swap(h.newBox(v))
				n.mu.Unlock()
				ov := old.v
				// The displaced box may still be read by a concurrent Get
				// that loaded it before the swap; retire it through the
				// epoch bins rather than dropping it to the GC.
				h.retireBox(old)
				return ov, true
			}
			continue // being removed: retry
		}

		topLayer := m.randomLevel()
		highestLocked := -1
		valid := true
		var prevPred *skipNode[K, V]
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred, succ := preds[layer], succs[layer]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[layer].Load() == succ
		}
		if !valid {
			unlockPreds(preds[:], highestLocked)
			continue
		}

		n := h.newNode(topLayer)
		n.key = k
		n.value.Store(h.newBox(v))
		for layer := 0; layer <= topLayer; layer++ {
			n.next[layer].Store(succs[layer])
		}
		for layer := 0; layer <= topLayer; layer++ {
			preds[layer].next[layer].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(preds[:], highestLocked)
		m.size.Add(1)
		var zero V
		return zero, false
	}
}

// Remove deletes k and returns the removed value, if any.
func (m *SkipListMap[K, V]) Remove(k K) (V, bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	var preds, succs [skipMaxLevel]*skipNode[K, V]
	var victim *skipNode[K, V]
	isMarked := false
	topLayer := -1
	for {
		found := m.findNode(k, preds[:], succs[:])
		if !isMarked {
			if found == -1 {
				var zero V
				return zero, false
			}
			victim = succs[found]
			if !victim.fullyLinked.Load() || victim.marked.Load() || victim.topLayer != found {
				var zero V
				return zero, false
			}
			topLayer = victim.topLayer
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				var zero V
				return zero, false
			}
			victim.marked.Store(true)
			isMarked = true
		}

		highestLocked := -1
		valid := true
		var prevPred *skipNode[K, V]
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred := preds[layer]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[layer].Load() == victim
		}
		if !valid {
			unlockPreds(preds[:], highestLocked)
			continue
		}

		for layer := topLayer; layer >= 0; layer-- {
			preds[layer].next[layer].Store(victim.next[layer].Load())
		}
		vb := victim.value.Load()
		v := vb.v
		victim.mu.Unlock()
		unlockPreds(preds[:], highestLocked)
		m.size.Add(-1)
		// The victim is unlinked (new traversals cannot reach it) but
		// readers that loaded a pointer before the unlink may still be
		// standing on it; retire node and final box through the epoch bins.
		h.retireBox(vb)
		h.retireNode(victim)
		return v, true
	}
}

// Len returns the number of entries.
func (m *SkipListMap[K, V]) Len() int {
	return int(m.size.Load())
}

// Min returns the smallest key and its value.
func (m *SkipListMap[K, V]) Min() (K, V, bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	for {
		n := m.head.next[0].Load()
		if n.sentinel == 1 {
			var zk K
			var zv V
			return zk, zv, false
		}
		if n.fullyLinked.Load() && !n.marked.Load() {
			return n.key, n.value.Load().v, true
		}
		procSpin()
	}
}

// Range calls f over entries in ascending key order until f returns false.
// Concurrent updates may or may not be observed.
func (m *SkipListMap[K, V]) Range(f func(K, V) bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	for n := m.head.next[0].Load(); n.sentinel != 1; n = n.next[0].Load() {
		if n.marked.Load() || !n.fullyLinked.Load() {
			continue
		}
		if !f(n.key, n.value.Load().v) {
			return
		}
	}
}

// RangeBetween calls f over entries with lo <= key <= hi in ascending order
// until f returns false. It descends the index layers to reach lo without
// scanning the whole list.
func (m *SkipListMap[K, V]) RangeBetween(lo, hi K, f func(K, V) bool) {
	h := m.pool.get()
	h.pin()
	defer func() { h.unpin(); m.pool.put(h) }()
	pred := m.head
	for layer := skipMaxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for m.compareNode(lo, curr) > 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
	}
	for n := pred.next[0].Load(); n.sentinel != 1; n = n.next[0].Load() {
		if m.compareNode(hi, n) < 0 {
			return
		}
		if n.marked.Load() || !n.fullyLinked.Load() || m.compareNode(lo, n) > 0 {
			continue
		}
		if !f(n.key, n.value.Load().v) {
			return
		}
	}
}

func unlockPreds[K any, V any](preds []*skipNode[K, V], highestLocked int) {
	var prev *skipNode[K, V]
	for layer := 0; layer <= highestLocked; layer++ {
		if preds[layer] != prev {
			preds[layer].mu.Unlock()
			prev = preds[layer]
		}
	}
}

// randomLevel draws a geometric level with p = 1/2.
func (m *SkipListMap[K, V]) randomLevel() int {
	for {
		old := m.seed.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if m.seed.CompareAndSwap(old, x) {
			level := 0
			for x&1 == 1 && level < skipMaxLevel-1 {
				level++
				x >>= 1
			}
			return level
		}
	}
}

func procSpin() {
	// Gosched lets the linking/unlinking goroutine run.
	spinYield()
}
