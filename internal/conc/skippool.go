package conc

import "sync"

// skippool.go wires the skiplist into the epoch facility, following the
// ctriepool.go pattern: every public SkipListMap operation borrows a slHandle
// from the map's slPool, pins its epoch slot for the duration of the
// traversal, and serves node/box allocation from typed freelists. Removed
// nodes and displaced value boxes are retired into rotating epoch bins and
// reused once the global epoch has advanced ebrGrace times past their tag —
// the skiplist's lock-free readers (Get, Range, findNode) may still be
// walking a node after its unlink, which is exactly the window the grace
// period covers.
//
// Node freelists are level-classed (a node's next array has topLayer+1
// slots), like the Ctrie pool's CNode length classes. Value boxes get their
// own freelist: Put-over-existing displaces one box per update, which is the
// skiplist's steady-state allocation residue.

const (
	// Per-level node freelist cap. Levels are geometric (p = 1/2), so the
	// low classes see nearly all the traffic.
	slNodeCap = 512
	// Value-box freelist cap.
	slBoxCap = 1024
)

// slBin is one epoch residue class of retired skiplist memory.
type slBin[K any, V any] struct {
	epoch uint64
	nodes []*skipNode[K, V]
	boxes []*box[V]
}

// slPool is the per-map reclamation domain + handle cache.
type slPool[K any, V any] struct {
	ebr     *ebr
	handles sync.Pool
}

func newSlPool[K any, V any]() *slPool[K, V] {
	p := &slPool[K, V]{ebr: newEBR()}
	p.handles.New = func() any {
		return &slHandle[K, V]{pool: p, slot: p.ebr.register()}
	}
	return p
}

func (p *slPool[K, V]) get() *slHandle[K, V] {
	return p.handles.Get().(*slHandle[K, V])
}

func (p *slPool[K, V]) put(h *slHandle[K, V]) {
	p.handles.Put(h)
}

// slHandle is one participant's view of the pool.
type slHandle[K any, V any] struct {
	pool *slPool[K, V]
	slot *ebrSlot
	ops  uint64

	bins [3]slBin[K, V]

	nodes [skipMaxLevel][]*skipNode[K, V]
	boxes []*box[V]
}

func (h *slHandle[K, V]) pin() {
	h.slot.pin(&h.pool.ebr.global)
	h.ops++
	if h.ops%epAdvanceEvery == 0 {
		h.pool.ebr.tryAdvance()
		h.drainExpired()
	}
}

func (h *slHandle[K, V]) unpin() {
	h.slot.unpin()
}

// --- allocation ---------------------------------------------------------

// newNode returns a node with topLayer+1 next slots, recycled if possible.
// Recycled nodes carry stale fields (key, flags, next pointers); newSkipNode
// callers overwrite key/value/next before publication, and the flags are
// reset here so a recycled node is never momentarily visible as fullyLinked.
func (h *slHandle[K, V]) newNode(topLayer int) *skipNode[K, V] {
	if ln := len(h.nodes[topLayer]); ln > 0 {
		n := h.nodes[topLayer][ln-1]
		h.nodes[topLayer][ln-1] = nil
		h.nodes[topLayer] = h.nodes[topLayer][:ln-1]
		return n
	}
	return newSkipNode[K, V](topLayer)
}

func (h *slHandle[K, V]) newBox(v V) *box[V] {
	if n := len(h.boxes); n > 0 {
		b := h.boxes[n-1]
		h.boxes[n-1] = nil
		h.boxes = h.boxes[:n-1]
		b.v = v
		return b
	}
	return &box[V]{v: v}
}

// --- retirement ---------------------------------------------------------

// bin returns the retire bin for the current epoch, draining the residue
// class first if it still holds a fully-aged previous cohort.
func (h *slHandle[K, V]) bin() *slBin[K, V] {
	e := h.pool.ebr.global.Load()
	b := &h.bins[e%3]
	if b.epoch != e {
		h.drainBin(b)
		b.epoch = e
	}
	return b
}

func (h *slHandle[K, V]) retireNode(n *skipNode[K, V]) {
	b := h.bin()
	b.nodes = append(b.nodes, n)
}

func (h *slHandle[K, V]) retireBox(bx *box[V]) {
	b := h.bin()
	b.boxes = append(b.boxes, bx)
}

// drainExpired moves every fully-aged bin to the freelists.
func (h *slHandle[K, V]) drainExpired() {
	g := h.pool.ebr.global.Load()
	for i := range h.bins {
		b := &h.bins[i]
		if b.epoch+ebrGrace <= g {
			h.drainBin(b)
		}
	}
}

func (h *slHandle[K, V]) drainBin(b *slBin[K, V]) {
	for i, n := range b.nodes {
		h.recycleNodeNow(n)
		b.nodes[i] = nil
	}
	for i, bx := range b.boxes {
		h.recycleBoxNow(bx)
		b.boxes[i] = nil
	}
	b.nodes = b.nodes[:0]
	b.boxes = b.boxes[:0]
}

// --- immediate recycling (fully-aged nodes) -----------------------------

func (h *slHandle[K, V]) recycleNodeNow(n *skipNode[K, V]) {
	tl := n.topLayer
	if tl < 0 || tl >= skipMaxLevel || len(h.nodes[tl]) >= slNodeCap {
		return
	}
	var zk K
	n.key = zk
	n.value.Store(nil)
	for i := range n.next {
		n.next[i].Store(nil)
	}
	n.marked.Store(false)
	n.fullyLinked.Store(false)
	h.nodes[tl] = append(h.nodes[tl], n)
}

func (h *slHandle[K, V]) recycleBoxNow(bx *box[V]) {
	if len(h.boxes) >= slBoxCap {
		return
	}
	var zv V
	bx.v = zv
	h.boxes = append(h.boxes, bx)
}
