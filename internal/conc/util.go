package conc

import "runtime"

// spinYield relaxes a spin loop by yielding the processor.
func spinYield() {
	runtime.Gosched()
}
