package conc

import (
	"fmt"
	"math/rand"
	"testing"
)

// poisonCtrieConfigs is the pool-poisoning matrix: every Ctrie variant that
// draws nodes from the epoch pools.
var poisonCtrieConfigs = []struct {
	name string
	cfg  CtrieConfig
}{
	{"versioned-cow", CtrieConfig{}},
	{"versioned-inplace", CtrieConfig{InPlace: true}},
	{"unversioned-cow", CtrieConfig{Unversioned: true}},
	{"unversioned-inplace", CtrieConfig{Unversioned: true, InPlace: true}},
}

// TestCtriePoolRecycledBranchesFresh poisons branch boxes with junk before
// retiring them and then checks, in the style of the STM descriptor pool
// test, that a box handed back out by the allocator is indistinguishable
// from a freshly allocated one.
func TestCtriePoolRecycledBranchesFresh(t *testing.T) {
	pool := newCtPool[int, int]()
	h := pool.get()

	// Poison a cohort and retire it through a full grace period.
	poisoned := make(map[*ctBranch[int, int]]bool)
	for i := 0; i < 64; i++ {
		b := h.newSNode(0xdeadbeef, 123456+i, -1-i, &ctGen{})
		b.fz = b // junk that must never survive recycling
		poisoned[b] = true
		h.retireBranch(b)
	}
	// Age the bin out: each advance re-keys bin(); after ebrGrace+1 epochs
	// the cohort's residue class is revisited and drained.
	for i := 0; i < 3*(ebrGrace+1); i++ {
		if !pool.ebr.tryAdvance() {
			t.Fatal("tryAdvance failed with no pinned participants")
		}
		h.pin()
		h.unpin()
	}
	h.drainExpired()

	recycled := 0
	for i := 0; i < 128; i++ {
		b := h.newBranch()
		if poisoned[b] {
			recycled++
			if b.in != nil || b.fz != nil || b.gen != nil || b.hc != 0 || b.k != 0 || b.v != 0 {
				t.Fatalf("recycled branch box not fresh: %+v", b)
			}
		}
	}
	if recycled == 0 {
		t.Fatal("no poisoned branch box came back through the allocator; the test exercised nothing")
	}
}

// TestCtriePoolRecycledMainsFresh does the same for main nodes, including
// the GCAS prev pointer, which must never leak into a new main.
func TestCtriePoolRecycledMainsFresh(t *testing.T) {
	pool := newCtPool[int, int]()
	h := pool.get()

	junkMain := &ctMain[int, int]{}
	poisoned := make(map[*ctMain[int, int]]bool)
	for i := 0; i < 64; i++ {
		m := h.newMain()
		m.cn = &ctCNode[int, int]{}
		m.tn = &ctBranch[int, int]{}
		m.ln = &ctLNode[int, int]{}
		m.failed = junkMain
		m.prev.Store(junkMain)
		poisoned[m] = true
		h.retireMain(m)
	}
	for i := 0; i < 3*(ebrGrace+1); i++ {
		pool.ebr.tryAdvance()
		h.pin()
		h.unpin()
	}
	h.drainExpired()

	recycled := 0
	for i := 0; i < 128; i++ {
		m := h.newMain()
		if poisoned[m] {
			recycled++
			if m.cn != nil || m.tn != nil || m.ln != nil || m.failed != nil || m.prev.Load() != nil {
				t.Fatalf("recycled main not fresh: %+v", m)
			}
		}
	}
	if recycled == 0 {
		t.Fatal("no poisoned main came back through the allocator")
	}
}

// TestCtrieChurnAgainstOracle hammers each pooled Ctrie variant with enough
// insert/update/remove churn to cycle nodes through retirement and reuse
// many times over, checking every operation's result against a plain map
// oracle — the end-to-end "recycled node behaves like a fresh node" check.
func TestCtrieChurnAgainstOracle(t *testing.T) {
	for _, tc := range poisonCtrieConfigs {
		t.Run(tc.name, func(t *testing.T) {
			ct := NewCtrieConfigured[int, int](IntHasher, tc.cfg)
			oracle := make(map[int]int)
			rng := rand.New(rand.NewSource(8))
			const keyRange = 128 // small: forces contract/re-split cycles
			steps := 200000
			if raceEnabled {
				steps = 25000
			}
			for step := 0; step < steps; step++ {
				k := rng.Intn(keyRange)
				switch rng.Intn(4) {
				case 0, 1:
					v := step
					old, had := ct.Put(k, v)
					wantOld, wantHad := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantHad = true
					}
					if had != wantHad || (had && old != wantOld) {
						t.Fatalf("step %d: Put(%d) = (%d,%v), want (%d,%v)", step, k, old, had, wantOld, wantHad)
					}
					oracle[k] = v
				case 2:
					old, had := ct.Remove(k)
					wantOld, wantHad := oracle[k], false
					if _, ok := oracle[k]; ok {
						wantHad = true
					}
					if had != wantHad || (had && old != wantOld) {
						t.Fatalf("step %d: Remove(%d) = (%d,%v), want (%d,%v)", step, k, old, had, wantOld, wantHad)
					}
					delete(oracle, k)
				case 3:
					v, ok := ct.Get(k)
					wantV, wantOk := oracle[k], false
					if _, present := oracle[k]; present {
						wantOk = true
					}
					if ok != wantOk || (ok && v != wantV) {
						t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, k, v, ok, wantV, wantOk)
					}
				}
			}
			got := make(map[int]int)
			ct.Range(func(k, v int) bool {
				if prev, dup := got[k]; dup {
					t.Fatalf("Range yielded key %d twice (values %d, %d)", k, prev, v)
				}
				got[k] = v
				return true
			})
			if len(got) != len(oracle) {
				t.Fatalf("final Range saw %d keys, oracle has %d", len(got), len(oracle))
			}
			for k, v := range oracle {
				if got[k] != v {
					t.Fatalf("final Range: key %d = %d, want %d", k, got[k], v)
				}
			}
		})
	}
}

// TestCtrieRecycledStateAcrossVariants runs the same deterministic script
// against a pooled trie and a map oracle twice — once on a cold structure
// and once on a structure whose pools have already been heavily cycled — and
// requires identical observable behavior, pinning down any state that could
// bleed through a recycled node.
func TestCtrieRecycledStateAcrossVariants(t *testing.T) {
	script := func(ct *Ctrie[int, int]) string {
		out := ""
		for i := 0; i < 500; i++ {
			k := (i * 7) % 64
			switch i % 3 {
			case 0:
				old, had := ct.Put(k, i)
				out += fmt.Sprintf("p%d:%d,%v;", k, old, had)
			case 1:
				v, ok := ct.Get(k)
				out += fmt.Sprintf("g%d:%d,%v;", k, v, ok)
			case 2:
				old, had := ct.Remove(k)
				out += fmt.Sprintf("r%d:%d,%v;", k, old, had)
			}
		}
		return out
	}
	for _, tc := range poisonCtrieConfigs {
		t.Run(tc.name, func(t *testing.T) {
			cold := NewCtrieConfigured[int, int](IntHasher, tc.cfg)
			want := script(cold)

			warm := NewCtrieConfigured[int, int](IntHasher, tc.cfg)
			rng := rand.New(rand.NewSource(99))
			warmup := 100000
			if raceEnabled {
				warmup = 20000
			}
			for i := 0; i < warmup; i++ { // cycle the pools hard
				k := rng.Intn(64)
				if rng.Intn(2) == 0 {
					warm.Put(k, i)
				} else {
					warm.Remove(k)
				}
			}
			for k := 0; k < 64; k++ {
				warm.Remove(k)
			}
			if got := script(warm); got != want {
				t.Fatal("script diverged on a pool-warmed trie: recycled node state leaked")
			}
		})
	}
}
