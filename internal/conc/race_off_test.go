//go:build !race

package conc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
