package conc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Review repro: in-place Put racing Remove on the same key. iremove loads the
// slot payload before freezeIfLive and retires it after the GCAS win; an
// in-place Put that lands its slot CAS in between retires the same box,
// double-inserting it into the pools. The box is then handed out twice (to
// two handles), published under two different keys, and the second writer's
// plain stores tear the first key's published box.
// Invariant: every value ever stored under key k satisfies v % keys == k.
func TestReviewInPlaceRemoveDoubleRetire(t *testing.T) {
	ct := NewCtrieConfigured[int, int](IntHasher, CtrieConfig{InPlace: true})
	const keys = 8
	for k := 0; k < keys; k++ {
		ct.Put(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var bad atomic.Pointer[string]
	report := func(msg string) { s := msg; bad.CompareAndSwap(nil, &s) }
	check := func(where string, k, v int) {
		if v%keys != k {
			report(where + ": value from another key's space (aliased/torn box)")
		}
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(keys)
				switch rng.Intn(4) {
				case 0, 1, 2: // mostly in-place updates on present keys
					if old, had := ct.Put(k, k+keys*(1+rng.Intn(1000))); had {
						check("Put old", k, old)
					}
				case 3:
					if old, had := ct.Remove(k); had {
						check("Remove old", k, old)
					}
					ct.Put(k, k+keys*(1+rng.Intn(1000)))
				}
			}
		}(int64(w + 1))
	}
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for k := 0; k < keys; k++ {
					if v, ok := ct.Get(k); ok {
						check("Get", k, v)
					}
				}
				ct.Range(func(k, v int) bool {
					check("Range", k, v)
					return true
				})
			}
		}()
	}
	time.Sleep(4 * time.Second)
	stop.Store(true)
	wg.Wait()
	if p := bad.Load(); p != nil {
		t.Fatal(*p)
	}
}
