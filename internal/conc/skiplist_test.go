package conc

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestSkipListBasics(t *testing.T) {
	m := NewSkipListMap[int, string](intCmp)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map should miss")
	}
	if _, had := m.Put(1, "a"); had {
		t.Fatal("Put on empty returned old value")
	}
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if old, had := m.Put(1, "b"); !had || old != "a" {
		t.Fatalf("Put replace = %q,%v", old, had)
	}
	if v, ok := m.Get(1); !ok || v != "b" {
		t.Fatalf("Get after replace = %q,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if old, had := m.Remove(1); !had || old != "b" {
		t.Fatalf("Remove = %q,%v", old, had)
	}
	if _, had := m.Remove(1); had {
		t.Fatal("second Remove should miss")
	}
	if m.Contains(1) {
		t.Fatal("Contains after Remove")
	}
}

func TestSkipListOrderedRange(t *testing.T) {
	m := NewSkipListMap[int, int](intCmp)
	perm := rand.New(rand.NewSource(1)).Perm(200)
	for _, k := range perm {
		m.Put(k, k*10)
	}
	var keys []int
	m.Range(func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("value for %d = %d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if len(keys) != 200 {
		t.Fatalf("Range visited %d keys, want 200", len(keys))
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Range must visit keys in ascending order")
	}
}

func TestSkipListMin(t *testing.T) {
	m := NewSkipListMap[int, string](intCmp)
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty should miss")
	}
	m.Put(5, "five")
	m.Put(2, "two")
	m.Put(9, "nine")
	k, v, ok := m.Min()
	if !ok || k != 2 || v != "two" {
		t.Fatalf("Min = %d,%q,%v", k, v, ok)
	}
	m.Remove(2)
	if k, _, _ := m.Min(); k != 5 {
		t.Fatalf("Min after remove = %d, want 5", k)
	}
}

func TestSkipListVsOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewSkipListMap[int, int](intCmp)
		oracle := make(map[int]int)
		for i, op := range ops {
			k := int(op % 64)
			switch op % 3 {
			case 0:
				gotOld, gotHad := m.Put(k, i)
				wantOld, wantHad := oracle[k]
				oracle[k] = i
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 1:
				gotOld, gotHad := m.Remove(k)
				wantOld, wantHad := oracle[k]
				delete(oracle, k)
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 2:
				got, gotOK := m.Get(k)
				want, wantOK := oracle[k]
				if gotOK != wantOK || (wantOK && got != want) {
					return false
				}
			}
		}
		return m.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrentDisjoint(t *testing.T) {
	m := NewSkipListMap[int, int](intCmp)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * perG
			for i := 0; i < perG; i++ {
				m.Put(base+i, base+i)
			}
			for i := 0; i < perG; i++ {
				if v, ok := m.Get(base + i); !ok || v != base+i {
					t.Errorf("Get(%d) = %d,%v", base+i, v, ok)
					return
				}
			}
			for i := 0; i < perG; i += 2 {
				if _, ok := m.Remove(base + i); !ok {
					t.Errorf("Remove(%d) missed", base+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != goroutines*perG/2 {
		t.Fatalf("Len = %d, want %d", m.Len(), goroutines*perG/2)
	}
}

func TestSkipListConcurrentSameKeys(t *testing.T) {
	m := NewSkipListMap[int, int](intCmp)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(32)
				switch rng.Intn(3) {
				case 0:
					m.Put(k, k*1000)
				case 1:
					m.Remove(k)
				case 2:
					if v, ok := m.Get(k); ok && v != k*1000 {
						t.Errorf("Get(%d) = %d, want %d", k, v, k*1000)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Structure must still be a consistent ordered map.
	var keys []int
	m.Range(func(k, v int) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.IntsAreSorted(keys) {
		t.Fatal("keys out of order after concurrent churn")
	}
}
