package conc

import (
	"math/rand"
	"testing"
)

// TestSkipPoolRecycledNodesFresh poisons skiplist nodes with junk before
// retiring them and checks, in the style of the Ctrie pool tests, that a node
// handed back out by the level-classed allocator is indistinguishable from a
// freshly allocated one — no stale key, value box, next pointers, or flags.
func TestSkipPoolRecycledNodesFresh(t *testing.T) {
	pool := newSlPool[int, int]()
	h := pool.get()

	const level = 2
	junk := newSkipNode[int, int](0)
	poisoned := make(map[*skipNode[int, int]]bool)
	for i := 0; i < 64; i++ {
		n := h.newNode(level)
		n.key = 0xdead + i
		n.value.Store(&box[int]{v: -i})
		for l := range n.next {
			n.next[l].Store(junk)
		}
		n.marked.Store(true)
		n.fullyLinked.Store(true)
		poisoned[n] = true
		h.retireNode(n)
	}
	// Age the bin out: each advance re-keys bin(); after ebrGrace+1 epochs
	// the cohort's residue class is revisited and drained.
	for i := 0; i < 3*(ebrGrace+1); i++ {
		if !pool.ebr.tryAdvance() {
			t.Fatal("tryAdvance failed with no pinned participants")
		}
		h.pin()
		h.unpin()
	}
	h.drainExpired()

	recycled := 0
	for i := 0; i < 128; i++ {
		n := h.newNode(level)
		if !poisoned[n] {
			continue
		}
		recycled++
		if n.key != 0 || n.value.Load() != nil || n.marked.Load() || n.fullyLinked.Load() {
			t.Fatalf("recycled node not fresh: key=%d value=%v marked=%v linked=%v",
				n.key, n.value.Load(), n.marked.Load(), n.fullyLinked.Load())
		}
		for l := range n.next {
			if n.next[l].Load() != nil {
				t.Fatalf("recycled node layer %d still points at junk", l)
			}
		}
	}
	if recycled == 0 {
		t.Fatal("no poisoned node came back through the allocator; the test exercised nothing")
	}
}

// TestSkipPoolRecycledBoxesFresh does the same for displaced value boxes, the
// skiplist's steady-state allocation residue under Put-over-existing.
func TestSkipPoolRecycledBoxesFresh(t *testing.T) {
	pool := newSlPool[int, int]()
	h := pool.get()

	poisoned := make(map[*box[int]]bool)
	for i := 0; i < 64; i++ {
		b := h.newBox(123456 + i)
		poisoned[b] = true
		h.retireBox(b)
	}
	for i := 0; i < 3*(ebrGrace+1); i++ {
		pool.ebr.tryAdvance()
		h.pin()
		h.unpin()
	}
	h.drainExpired()

	recycled := 0
	for i := 0; i < 128; i++ {
		b := h.newBox(7)
		if poisoned[b] {
			recycled++
			if b.v != 7 {
				t.Fatalf("recycled box carries stale value %d, want 7", b.v)
			}
		}
	}
	if recycled == 0 {
		t.Fatal("no poisoned box came back through the allocator")
	}
}

// TestSkipListRecycledStateDeterministic runs the same deterministic script
// against a cold map and a map whose pools have been heavily cycled, and
// requires identical observable behavior — any state bleeding through a
// recycled node or box would diverge the transcripts.
func TestSkipListRecycledStateDeterministic(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	script := func(m *SkipListMap[int, int]) []int {
		var out []int
		for i := 0; i < 500; i++ {
			k := (i * 7) % 64
			switch i % 3 {
			case 0:
				old, had := m.Put(k, i)
				out = append(out, k, old, boolInt(had))
			case 1:
				v, ok := m.Get(k)
				out = append(out, k, v, boolInt(ok))
			case 2:
				old, had := m.Remove(k)
				out = append(out, k, old, boolInt(had))
			}
		}
		return out
	}

	cold := NewSkipListMap[int, int](cmp)
	want := script(cold)

	warm := NewSkipListMap[int, int](cmp)
	rng := rand.New(rand.NewSource(99))
	warmup := 100000
	if raceEnabled {
		warmup = 20000
	}
	for i := 0; i < warmup; i++ { // cycle the node and box pools hard
		k := rng.Intn(64)
		if rng.Intn(2) == 0 {
			warm.Put(k, i)
		} else {
			warm.Remove(k)
		}
	}
	for k := 0; k < 64; k++ {
		warm.Remove(k)
	}
	got := script(warm)
	if len(got) != len(want) {
		t.Fatalf("script transcript length diverged: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("script diverged on a pool-warmed skiplist: recycled state leaked")
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
