package conc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCtrieLenRangeUnderRacingWriters is the regression test for the
// torn-walk bug class: Len and Range on a versioned trie must observe a
// single point-in-time state (they route through ReadOnlySnapshot), so a
// racing writer can never make a walk miss a key it does not touch, yield a
// key twice, or double-count. The stable keys are never written after
// setup; every walk must see each of them exactly once, and Len must stay
// within the bound set by the volatile keys in flight. Run with -race: the
// walk must also be free of data races against the writers.
func TestCtrieLenRangeUnderRacingWriters(t *testing.T) {
	ct := NewCtrie[int, int](IntHasher)
	const stable = 256   // keys 0..255: present forever
	const volatile = 128 // keys 1000..1127: toggled by writers
	for k := 0; k < stable; k++ {
		ct.Put(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	const writers = 3
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := 1000 + rng.Intn(volatile)
				if rng.Intn(2) == 0 {
					ct.Put(k, k)
				} else {
					ct.Remove(k)
				}
			}
		}(int64(w + 1))
	}

	for i := 0; i < 200; i++ {
		seen := make(map[int]int, stable+volatile)
		ct.Range(func(k, v int) bool {
			if _, dup := seen[k]; dup {
				t.Errorf("walk %d: Range yielded key %d twice", i, k)
			}
			seen[k] = v
			return true
		})
		for k := 0; k < stable; k++ {
			if v, ok := seen[k]; !ok || v != k {
				t.Fatalf("walk %d: stable key %d = %d,%v — a racing writer tore the walk", i, k, v, ok)
			}
		}
		if n := ct.Len(); n < stable || n > stable+volatile {
			t.Fatalf("walk %d: Len() = %d, want within [%d, %d]", i, n, stable, stable+volatile)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestCtrieLenRangeFrozenPoint pins the linearization guarantee directly:
// a Range observation is a snapshot, so writes issued after Range returns
// must not be visible in a re-walk of the same snapshot — and Len taken
// before a burst of writes reflects none of them.
func TestCtrieLenRangeFrozenPoint(t *testing.T) {
	ct := NewCtrie[int, int](IntHasher)
	for k := 0; k < 100; k++ {
		ct.Put(k, k)
	}
	snap := ct.ReadOnlySnapshot()
	for k := 100; k < 200; k++ {
		ct.Put(k, k)
	}
	if n := snap.Len(); n != 100 {
		t.Fatalf("snapshot Len() = %d after live writes, want 100", n)
	}
	if n := ct.Len(); n != 200 {
		t.Fatalf("live Len() = %d, want 200", n)
	}
	count := 0
	snap.Range(func(k, v int) bool {
		if k >= 100 {
			t.Fatalf("snapshot Range yielded post-snapshot key %d", k)
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("snapshot Range yielded %d keys, want 100", count)
	}
}
