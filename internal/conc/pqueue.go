package conc

import (
	"sync"
	"sync/atomic"
)

// Less orders values; it must be a strict weak ordering.
type Less[V any] func(a, b V) bool

// Item is a lazy-deletion wrapper around a queued value. Proust's eager
// priority-queue wrapper (paper Figure 3) inserts Items and registers
// Item.Delete as the inverse of insert: a logically deleted item stays in
// the heap and is skipped (and physically removed) by later operations.
// This is the "same lazy-deletion trick utilized in the Boosting paper".
type Item[V any] struct {
	Value   V
	deleted atomic.Bool
}

// Delete marks the item as logically removed.
func (it *Item[V]) Delete() { it.deleted.Store(true) }

// Deleted reports whether the item is logically removed.
func (it *Item[V]) Deleted() bool { return it.deleted.Load() }

// PQueue is a thread-safe priority queue: a binary min-heap guarded by a
// single mutex, the design of java.util.concurrent.PriorityBlockingQueue
// (minus blocking take, which Proust does not need). Values are stored in
// lazy-deletion wrappers.
type PQueue[V any] struct {
	less Less[V]

	mu   sync.Mutex
	heap []*Item[V]
	live int // items not logically deleted
}

// NewPQueue creates a priority queue ordered by less.
func NewPQueue[V any](less Less[V]) *PQueue[V] {
	return &PQueue[V]{less: less}
}

// Add inserts v and returns its lazy-deletion wrapper.
func (q *PQueue[V]) Add(v V) *Item[V] {
	it := &Item[V]{Value: v}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.heap = append(q.heap, it)
	q.siftUp(len(q.heap) - 1)
	q.live++
	return it
}

// AddItem re-inserts an existing wrapper (the inverse of RemoveMin). The
// item's deleted mark is cleared.
func (q *PQueue[V]) AddItem(it *Item[V]) {
	it.deleted.Store(false)
	q.mu.Lock()
	defer q.mu.Unlock()
	q.heap = append(q.heap, it)
	q.siftUp(len(q.heap) - 1)
	q.live++
}

// Min returns the smallest live value without removing it.
func (q *PQueue[V]) Min() (V, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.purgeTop()
	if len(q.heap) == 0 {
		var zero V
		return zero, false
	}
	return q.heap[0].Value, true
}

// RemoveMin removes and returns the smallest live item.
func (q *PQueue[V]) RemoveMin() (*Item[V], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.purgeTop()
	if len(q.heap) == 0 {
		return nil, false
	}
	it := q.heap[0]
	q.popTop()
	q.live--
	return it, true
}

// Contains reports whether any live item equals v under eq.
func (q *PQueue[V]) Contains(v V, eq func(a, b V) bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range q.heap {
		if !it.Deleted() && eq(it.Value, v) {
			return true
		}
	}
	return false
}

// Len returns the number of live items.
func (q *PQueue[V]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.live
}

// NoteDeleted records that an item previously added has been logically
// deleted, keeping the live count accurate. The caller must have marked the
// item via Delete.
func (q *PQueue[V]) NoteDeleted() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.live--
}

// Drain removes and returns all live values in ascending order. Used by
// tests and examples.
func (q *PQueue[V]) Drain() []V {
	var out []V
	for {
		it, ok := q.RemoveMin()
		if !ok {
			return out
		}
		out = append(out, it.Value)
	}
}

// purgeTop physically removes logically deleted items from the heap top.
// Deleted items below the top are removed when they surface.
func (q *PQueue[V]) purgeTop() {
	for len(q.heap) > 0 && q.heap[0].Deleted() {
		q.popTop()
	}
}

func (q *PQueue[V]) popTop() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.siftDown(0)
	}
}

func (q *PQueue[V]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i].Value, q.heap[parent].Value) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *PQueue[V]) siftDown(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(q.heap[l].Value, q.heap[smallest].Value) {
			smallest = l
		}
		if r < n && q.less(q.heap[r].Value, q.heap[smallest].Value) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
