package conc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// This file is the snapshot-vs-in-place interleaving suite: the invariant
// the in-place fast path could silently break is snapshot freezing — a slot
// CAS that lands in a CNode some snapshot can still reach would mutate
// history. The deterministic tests below enumerate operation schedules with
// a Snapshot() taken at every step boundary and assert every snapshot stays
// frozen (equal to its oracle at capture time) while the live trie advances
// and its pools recycle nodes; the concurrent test races real writers
// against the snapshot fence.

// snapAt captures a snapshot together with the oracle state at capture time.
type snapAt struct {
	snap   *Ctrie[int, int]
	oracle map[int]int
	step   int
}

func cloneOracle(m map[int]int) map[int]int {
	c := make(map[int]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func assertFrozen(t *testing.T, s snapAt) {
	t.Helper()
	got := make(map[int]int)
	s.snap.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(s.oracle) {
		t.Fatalf("snapshot taken at step %d thawed: has %d keys, want %d", s.step, len(got), len(s.oracle))
	}
	for k, v := range s.oracle {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("snapshot taken at step %d thawed: key %d = %d,%v, want %d", s.step, k, gv, ok, v)
		}
	}
	for k := range s.oracle {
		if v, ok := s.snap.Get(k); !ok || v != s.oracle[k] {
			t.Fatalf("snapshot taken at step %d: Get(%d) = %d,%v disagrees with Range", s.step, k, v, ok)
		}
	}
}

// TestCtrieSnapshotFrozenAtEveryBoundary drives deterministic Put/Remove
// schedules against an in-place trie, capturing a snapshot at every single
// step boundary. After the schedule completes (with the live trie having
// advanced through splits, contractions, in-place hits and pool reuse),
// every captured snapshot must still equal the oracle state at its capture
// point.
func TestCtrieSnapshotFrozenAtEveryBoundary(t *testing.T) {
	schedules := [][2]int{ // {seed, steps}
		{1, 120}, {2, 120}, {3, 200}, {4, 200},
	}
	for _, cfg := range []CtrieConfig{{InPlace: true}, {}} {
		for _, sched := range schedules {
			rng := rand.New(rand.NewSource(int64(sched[0])))
			ct := NewCtrieConfigured[int, int](IntHasher, cfg)
			oracle := make(map[int]int)
			var snaps []snapAt
			const keyRange = 16 // tiny: every CNode is shared by several keys
			for step := 0; step < sched[1]; step++ {
				k := rng.Intn(keyRange)
				if rng.Intn(3) == 0 {
					ct.Remove(k)
					delete(oracle, k)
				} else {
					ct.Put(k, step)
					oracle[k] = step
				}
				snaps = append(snaps, snapAt{
					snap:   ct.ReadOnlySnapshot(),
					oracle: cloneOracle(oracle),
					step:   step,
				})
			}
			for _, s := range snaps {
				assertFrozen(t, s)
			}
		}
	}
}

// TestCtrieSnapshotFrozenUnderChurn keeps only a sliding window of
// snapshots so retired nodes actually age out and get recycled while older
// snapshots are still being validated — the schedule a stale retire rule
// (recycling a node some snapshot can reach) would fail.
func TestCtrieSnapshotFrozenUnderChurn(t *testing.T) {
	ct := NewCtrieConfigured[int, int](IntHasher, CtrieConfig{InPlace: true})
	oracle := make(map[int]int)
	rng := rand.New(rand.NewSource(42))
	var window []snapAt
	const keyRange = 64
	steps := 30000
	if raceEnabled {
		steps = 8000
	}
	for step := 0; step < steps; step++ {
		k := rng.Intn(keyRange)
		if rng.Intn(3) == 0 {
			ct.Remove(k)
			delete(oracle, k)
		} else {
			ct.Put(k, step)
			oracle[k] = step
		}
		if step%50 == 0 {
			window = append(window, snapAt{
				snap:   ct.ReadOnlySnapshot(),
				oracle: cloneOracle(oracle),
				step:   step,
			})
		}
		if len(window) > 8 {
			assertFrozen(t, window[0])
			window = window[1:]
		}
	}
	for _, s := range window {
		assertFrozen(t, s)
	}
}

// TestCtrieInPlaceMatchesCOW runs identical schedules through an in-place
// trie and a copy-on-write trie and requires identical results — the two
// configurations must be observationally equivalent.
func TestCtrieInPlaceMatchesCOW(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ip := NewCtrieConfigured[int, int](IntHasher, CtrieConfig{InPlace: true})
	cow := NewCtrieConfigured[int, int](IntHasher, CtrieConfig{})
	steps := 50000
	if raceEnabled {
		steps = 10000
	}
	for step := 0; step < steps; step++ {
		k := rng.Intn(128)
		switch rng.Intn(4) {
		case 0, 1:
			o1, h1 := ip.Put(k, step)
			o2, h2 := cow.Put(k, step)
			if o1 != o2 || h1 != h2 {
				t.Fatalf("step %d: Put diverged: inplace (%d,%v) vs cow (%d,%v)", step, o1, h1, o2, h2)
			}
		case 2:
			o1, h1 := ip.Remove(k)
			o2, h2 := cow.Remove(k)
			if o1 != o2 || h1 != h2 {
				t.Fatalf("step %d: Remove diverged: inplace (%d,%v) vs cow (%d,%v)", step, o1, h1, o2, h2)
			}
		case 3:
			v1, ok1 := ip.Get(k)
			v2, ok2 := cow.Get(k)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("step %d: Get diverged: inplace (%d,%v) vs cow (%d,%v)", step, v1, ok1, v2, ok2)
			}
		}
		if step%5000 == 0 {
			if n1, n2 := ip.Len(), cow.Len(); n1 != n2 {
				t.Fatalf("step %d: Len diverged: inplace %d vs cow %d", step, n1, n2)
			}
		}
	}
}

// TestCtrieSnapshotFrozenConcurrent races writers (hitting the in-place
// fast path and the structural copy path) against a snapshotter. Every
// snapshot is read twice in full; the two reads must agree — a snapshot
// that changes between its own reads has been mutated in place by a writer
// that should have been fenced by the freeze protocol and the snapshot's
// grace-period wait. Run with -race.
func TestCtrieSnapshotFrozenConcurrent(t *testing.T) {
	ct := NewCtrieConfigured[int, int](IntHasher, CtrieConfig{InPlace: true})
	const keyRange = 64
	for k := 0; k < keyRange; k += 2 {
		ct.Put(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(keyRange)
				switch rng.Intn(3) {
				case 0:
					ct.Put(k, rng.Int())
				case 1:
					ct.Remove(k)
				case 2:
					ct.Get(k)
				}
			}
		}(int64(w + 1))
	}
	for i := 0; i < 300; i++ {
		snap := ct.ReadOnlySnapshot()
		first := make(map[int]int)
		snap.Range(func(k, v int) bool {
			first[k] = v
			return true
		})
		second := make(map[int]int)
		snap.Range(func(k, v int) bool {
			second[k] = v
			return true
		})
		if len(first) != len(second) {
			t.Fatalf("snapshot %d changed between reads: %d keys then %d", i, len(first), len(second))
		}
		for k, v := range first {
			if second[k] != v {
				t.Fatalf("snapshot %d changed between reads: key %d was %d, became %d", i, k, v, second[k])
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
