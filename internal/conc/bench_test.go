package conc

import (
	"fmt"
	"testing"
)

func BenchmarkMapsGet(b *testing.B) {
	const n = 1024
	hm := NewHashMap[int, int](IntHasher)
	ct := NewCtrie[int, int](IntHasher)
	sl := NewSkipListMap[int, int](intCmp)
	for i := 0; i < n; i++ {
		hm.Put(i, i)
		ct.Put(i, i)
		sl.Put(i, i)
	}
	b.Run("hashmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hm.Get(i % n)
		}
	})
	b.Run("ctrie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ct.Get(i % n)
		}
	})
	b.Run("skiplist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sl.Get(i % n)
		}
	})
}

func BenchmarkMapsPut(b *testing.B) {
	const n = 1024
	b.Run("hashmap", func(b *testing.B) {
		m := NewHashMap[int, int](IntHasher)
		for i := 0; i < b.N; i++ {
			m.Put(i%n, i)
		}
	})
	b.Run("ctrie", func(b *testing.B) {
		m := NewCtrie[int, int](IntHasher)
		for i := 0; i < b.N; i++ {
			m.Put(i%n, i)
		}
	})
	b.Run("skiplist", func(b *testing.B) {
		m := NewSkipListMap[int, int](intCmp)
		for i := 0; i < b.N; i++ {
			m.Put(i%n, i)
		}
	})
}

// BenchmarkCtrieSnapshot measures the constant-time snapshot at several map
// sizes — the property the lazy Proustian wrappers depend on.
func BenchmarkCtrieSnapshot(b *testing.B) {
	for _, n := range []int{100, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ct := NewCtrie[int, int](IntHasher)
			for i := 0; i < n; i++ {
				ct.Put(i, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := ct.Snapshot()
				_ = snap
			}
		})
	}
}

// BenchmarkCtriePutAfterSnapshot measures the lazy path-copying cost a
// writer pays right after a snapshot.
func BenchmarkCtriePutAfterSnapshot(b *testing.B) {
	ct := NewCtrie[int, int](IntHasher)
	for i := 0; i < 10000; i++ {
		ct.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ct.Snapshot()
		ct.Put(i%10000, i)
	}
}

func BenchmarkPQueueAddRemove(b *testing.B) {
	b.Run("heap-lazy-deletion", func(b *testing.B) {
		q := NewPQueue(intLess)
		for i := 0; i < b.N; i++ {
			q.Add(i % 1000)
			if i%2 == 1 {
				q.RemoveMin()
				q.RemoveMin()
			}
		}
	})
	b.Run("cow-heap", func(b *testing.B) {
		h := NewCOWHeap(intLess)
		for i := 0; i < b.N; i++ {
			h.Insert(i % 1000)
			if i%2 == 1 {
				h.RemoveMin()
				h.RemoveMin()
			}
		}
	})
}

func BenchmarkCOWHeapSnapshot(b *testing.B) {
	h := NewCOWHeap(intLess)
	for i := 0; i < 10000; i++ {
		h.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}

// BenchmarkCtrieUpdateHeavy measures the workload the in-place fast path is
// built for: pure value updates over a stable, prepopulated key set — no
// structural churn, so the freeze protocol never runs and every update is a
// single slot CAS instead of a CNode copy. Compare against churn-heavy
// workloads (EXPERIMENTS.md), where the freeze pass makes in-place a net
// loss and the copy-on-write default wins.
func BenchmarkCtrieUpdateHeavy(b *testing.B) {
	const n = 1024
	for _, tc := range []struct {
		name string
		cfg  CtrieConfig
	}{
		{"cow", CtrieConfig{Unversioned: true}},
		{"inplace", CtrieConfig{Unversioned: true, InPlace: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ct := NewCtrieConfigured[int, int](IntHasher, tc.cfg)
			for i := 0; i < n; i++ {
				ct.Put(i, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ct.Put(i%n, i)
			}
		})
	}
}

// BenchmarkCtrieChurn is the counterpoint: insert/remove churn, where every
// structural displacement must freeze the CNode first when in-place is on.
func BenchmarkCtrieChurn(b *testing.B) {
	const n = 1024
	for _, tc := range []struct {
		name string
		cfg  CtrieConfig
	}{
		{"cow", CtrieConfig{Unversioned: true}},
		{"inplace", CtrieConfig{Unversioned: true, InPlace: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ct := NewCtrieConfigured[int, int](IntHasher, tc.cfg)
			for i := 0; i < n; i += 2 {
				ct.Put(i, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % n
				if k%2 == 0 {
					ct.Remove(k)
					ct.Put(k, i)
				} else {
					ct.Put(k, i)
					ct.Remove(k)
				}
			}
		})
	}
}
