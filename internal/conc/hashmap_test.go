package conc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap[int, string](IntHasher)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map should miss")
	}
	if old, had := m.Put(1, "a"); had {
		t.Fatalf("Put on empty returned old %q", old)
	}
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Fatalf("Get = %q,%v want a,true", v, ok)
	}
	if old, had := m.Put(1, "b"); !had || old != "a" {
		t.Fatalf("Put replace = %q,%v want a,true", old, had)
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("Contains mismatch")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if old, had := m.Remove(1); !had || old != "b" {
		t.Fatalf("Remove = %q,%v want b,true", old, had)
	}
	if _, had := m.Remove(1); had {
		t.Fatal("second Remove should miss")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestHashMapPutIfAbsent(t *testing.T) {
	m := NewHashMap[string, int](StringHasher)
	if v, stored := m.PutIfAbsent("k", 1); !stored || v != 1 {
		t.Fatalf("first PutIfAbsent = %d,%v", v, stored)
	}
	if v, stored := m.PutIfAbsent("k", 2); stored || v != 1 {
		t.Fatalf("second PutIfAbsent = %d,%v want 1,false", v, stored)
	}
}

func TestHashMapRange(t *testing.T) {
	m := NewHashMap[int, int](IntHasher)
	for i := 0; i < 100; i++ {
		m.Put(i, i*i)
	}
	seen := make(map[int]int)
	m.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d entries, want 100", len(seen))
	}
	for k, v := range seen {
		if v != k*k {
			t.Fatalf("seen[%d] = %d, want %d", k, v, k*k)
		}
	}
	// Early stop.
	count := 0
	m.Range(func(int, int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early-stop Range visited %d, want 5", count)
	}
}

// TestHashMapVsOracle drives a random op sequence against both the
// concurrent map and Go's built-in map.
func TestHashMapVsOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewHashMapStripes[int, int](IntHasher, 4)
		oracle := make(map[int]int)
		for i, op := range ops {
			k := int(op % 32)
			switch op % 3 {
			case 0:
				gotOld, gotHad := m.Put(k, i)
				wantOld, wantHad := oracle[k]
				oracle[k] = i
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 1:
				gotOld, gotHad := m.Remove(k)
				wantOld, wantHad := oracle[k]
				delete(oracle, k)
				if gotHad != wantHad || (wantHad && gotOld != wantOld) {
					return false
				}
			case 2:
				got, gotOK := m.Get(k)
				want, wantOK := oracle[k]
				if gotOK != wantOK || (wantOK && got != want) {
					return false
				}
			}
		}
		return m.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapConcurrentDisjoint(t *testing.T) {
	m := NewHashMap[int, int](IntHasher)
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * perG
			for i := 0; i < perG; i++ {
				m.Put(base+i, i)
			}
			for i := 0; i < perG; i++ {
				if v, ok := m.Get(base + i); !ok || v != i {
					t.Errorf("Get(%d) = %d,%v", base+i, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", m.Len(), goroutines*perG)
	}
}

func TestHashMapConcurrentMixed(t *testing.T) {
	m := NewHashMap[int, int](IntHasher)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					m.Put(k, k)
				case 1:
					m.Remove(k)
				case 2:
					if v, ok := m.Get(k); ok && v != k {
						t.Errorf("Get(%d) returned foreign value %d", k, v)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestHashers(t *testing.T) {
	if IntHasher(1) == IntHasher(2) {
		t.Error("IntHasher collision on adjacent ints")
	}
	if Uint64Hasher(1) == Uint64Hasher(2) {
		t.Error("Uint64Hasher collision on adjacent ints")
	}
	if StringHasher("a") == StringHasher("b") {
		t.Error("StringHasher collision")
	}
	if StringHasher("abc") != StringHasher("abc") {
		t.Error("StringHasher not deterministic")
	}
}
