package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// epoch.go is a small epoch-based reclamation (EBR/QSBR) facility in the
// style of Fraser's epoch scheme: participants announce the global epoch
// while they hold references into a shared structure ("pinned"), retired
// memory is tagged with the epoch at retirement, and a retired object may
// be reused once the global epoch has advanced twice past its tag — at
// that point every pinned section that could have observed it has ended.
//
// The facility exists so lock-free structures in this package (today the
// Ctrie, later the skiplist/hashmap) can pool and reuse retired nodes
// instead of leaving every displaced node to the garbage collector. It is
// deliberately tiny: a global epoch counter, a grow-only registry of
// padded participant slots, and two operations (tryAdvance, synchronize).
// Typed retire lists live with the callers (see ctriepool.go), keyed by
// the epoch tag this package hands out.

// ebrGrace is the number of epoch advances that must be observed after an
// object is retired before it may be reused: a participant pinned at epoch
// e can hold references retired at e or e-1, so retire-at-e is safe to
// free once the global epoch reaches e+2.
const ebrGrace = 2

// ebrSlot is one participant's announcement word, padded to a cache line
// so concurrent pin/unpin traffic from different participants does not
// false-share. state is epoch<<1 | active.
type ebrSlot struct {
	state atomic.Uint64
	_     [56]byte
}

func (s *ebrSlot) pin(global *atomic.Uint64) uint64 {
	e := global.Load()
	// A single announcement is enough: announcing an epoch that is already
	// stale merely delays advancement, it never lets reclamation run early.
	s.state.Store(e<<1 | 1)
	return e
}

func (s *ebrSlot) unpin() {
	s.state.Store(s.state.Load() &^ 1)
}

// ebr is one reclamation domain. Structures that share retired memory
// (a Ctrie and its snapshots) must share one domain.
type ebr struct {
	global atomic.Uint64

	mu    sync.Mutex
	slots atomic.Pointer[[]*ebrSlot]
}

func newEBR() *ebr {
	e := &ebr{}
	empty := make([]*ebrSlot, 0)
	e.slots.Store(&empty)
	return e
}

// register adds a participant slot to the domain. Slots are never removed:
// the registry is bounded by the peak number of concurrent participants
// (handles are recycled through a sync.Pool, see ctriepool.go), and an
// unpinned slot never blocks advancement.
func (e *ebr) register() *ebrSlot {
	s := &ebrSlot{}
	e.mu.Lock()
	old := *e.slots.Load()
	next := make([]*ebrSlot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	e.slots.Store(&next)
	e.mu.Unlock()
	return s
}

// tryAdvance attempts to move the global epoch forward by one. It fails if
// any participant is pinned at an epoch other than the current one — that
// participant may still hold references retired two epochs back.
func (e *ebr) tryAdvance() bool {
	cur := e.global.Load()
	for _, s := range *e.slots.Load() {
		st := s.state.Load()
		if st&1 == 1 && st>>1 != cur {
			return false
		}
	}
	return e.global.CompareAndSwap(cur, cur+1)
}

// synchronize blocks until a full grace period has elapsed: every pinned
// section that was in flight when it was called has ended. The caller must
// NOT be pinned. Cost is bounded by the duration of in-flight operations,
// not by the size of any structure.
func (e *ebr) synchronize() {
	target := e.global.Load() + ebrGrace
	for e.global.Load() < target {
		if !e.tryAdvance() {
			runtime.Gosched()
		}
	}
}
