package conc

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }
func intEq(a, b int) bool   { return a == b }

func TestPQueueOrdering(t *testing.T) {
	q := NewPQueue(intLess)
	in := []int{5, 1, 4, 1, 3, 9, 2}
	for _, v := range in {
		q.Add(v)
	}
	if q.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(in))
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	got := q.Drain()
	if len(got) != len(want) {
		t.Fatalf("Drain returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestPQueueMinDoesNotRemove(t *testing.T) {
	q := NewPQueue(intLess)
	q.Add(2)
	q.Add(1)
	for i := 0; i < 3; i++ {
		if v, ok := q.Min(); !ok || v != 1 {
			t.Fatalf("Min = %d,%v want 1,true", v, ok)
		}
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestPQueueEmpty(t *testing.T) {
	q := NewPQueue(intLess)
	if _, ok := q.Min(); ok {
		t.Fatal("Min on empty should miss")
	}
	if _, ok := q.RemoveMin(); ok {
		t.Fatal("RemoveMin on empty should miss")
	}
	if q.Len() != 0 {
		t.Fatal("Len on empty should be 0")
	}
}

func TestPQueueLazyDeletion(t *testing.T) {
	q := NewPQueue(intLess)
	it1 := q.Add(1)
	q.Add(2)
	q.Add(3)
	// Logically delete the minimum: it must be skipped.
	it1.Delete()
	q.NoteDeleted()
	if q.Len() != 2 {
		t.Fatalf("Len after lazy delete = %d, want 2", q.Len())
	}
	if v, ok := q.Min(); !ok || v != 2 {
		t.Fatalf("Min = %d,%v want 2,true (deleted item skipped)", v, ok)
	}
	if q.Contains(1, intEq) {
		t.Fatal("Contains must skip deleted items")
	}
	if !q.Contains(3, intEq) {
		t.Fatal("Contains(3) should hit")
	}
}

func TestPQueueReAddItemAsInverse(t *testing.T) {
	// RemoveMin's inverse is AddItem: the wrapper returns with its deleted
	// mark cleared.
	q := NewPQueue(intLess)
	q.Add(1)
	q.Add(2)
	it, ok := q.RemoveMin()
	if !ok || it.Value != 1 {
		t.Fatalf("RemoveMin = %v,%v", it, ok)
	}
	q.AddItem(it)
	if v, ok := q.Min(); !ok || v != 1 {
		t.Fatalf("Min after inverse = %d,%v want 1,true", v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestPQueueVsSortedOracle(t *testing.T) {
	f := func(vals []int16) bool {
		q := NewPQueue(intLess)
		for _, v := range vals {
			q.Add(int(v))
		}
		want := make([]int, len(vals))
		for i, v := range vals {
			want[i] = int(v)
		}
		sort.Ints(want)
		got := q.Drain()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPQueueConcurrent(t *testing.T) {
	q := NewPQueue(intLess)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				q.Add(rng.Intn(1000))
			}
		}(int64(g))
	}
	wg.Wait()
	if q.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", q.Len(), goroutines*perG)
	}
	// Concurrent removals drain exactly everything, in globally
	// non-decreasing order per goroutine.
	var removed sync.Map
	var total sync.WaitGroup
	count := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		total.Add(1)
		go func(g int) {
			defer total.Done()
			prev := -1
			for {
				it, ok := q.RemoveMin()
				if !ok {
					return
				}
				if it.Value < prev {
					t.Errorf("goroutine %d observed decreasing mins %d after %d", g, it.Value, prev)
					return
				}
				prev = it.Value
				count[g]++
				removed.Store(it, true)
			}
		}(g)
	}
	total.Wait()
	sum := 0
	for _, c := range count {
		sum += c
	}
	if sum != goroutines*perG {
		t.Fatalf("drained %d items, want %d", sum, goroutines*perG)
	}
}

func TestCOWHeapBasics(t *testing.T) {
	h := NewCOWHeap(intLess)
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty should miss")
	}
	if _, ok := h.RemoveMin(); ok {
		t.Fatal("RemoveMin on empty should miss")
	}
	h.Insert(3)
	h.Insert(1)
	h.Insert(2)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if v, ok := h.Min(); !ok || v != 1 {
		t.Fatalf("Min = %d,%v", v, ok)
	}
	for want := 1; want <= 3; want++ {
		if v, ok := h.RemoveMin(); !ok || v != want {
			t.Fatalf("RemoveMin = %d,%v want %d", v, ok, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestCOWHeapContains(t *testing.T) {
	h := NewCOWHeap(intLess)
	for _, v := range []int{5, 3, 8} {
		h.Insert(v)
	}
	if !h.Contains(8, intEq) || h.Contains(7, intEq) {
		t.Fatal("Contains mismatch")
	}
}

func TestCOWHeapSnapshotIsolation(t *testing.T) {
	h := NewCOWHeap(intLess)
	h.Insert(2)
	h.Insert(4)
	snap := h.Snapshot()

	// Mutate the original: snapshot unaffected.
	h.Insert(1)
	if v, _ := h.Min(); v != 1 {
		t.Fatalf("heap Min = %d, want 1", v)
	}
	if v, _ := snap.Min(); v != 2 {
		t.Fatalf("snapshot Min = %d, want 2 (isolated)", v)
	}

	// Mutate the snapshot: original unaffected.
	snap.Insert(0)
	if got, _ := snap.RemoveMin(); got != 0 {
		t.Fatalf("snapshot RemoveMin = %d, want 0", got)
	}
	if v, _ := h.Min(); v != 1 {
		t.Fatalf("heap Min after snapshot mutation = %d, want 1", v)
	}
	if snap.Len() != 2 {
		t.Fatalf("snapshot Len = %d, want 2", snap.Len())
	}
	if !snap.Contains(4, intEq) {
		t.Fatal("snapshot should contain 4")
	}
}

func TestCOWHeapVsSortedOracle(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewCOWHeap(intLess)
		for _, v := range vals {
			h.Insert(int(v))
		}
		want := make([]int, len(vals))
		for i, v := range vals {
			want[i] = int(v)
		}
		sort.Ints(want)
		for _, w := range want {
			v, ok := h.RemoveMin()
			if !ok || v != w {
				return false
			}
		}
		_, ok := h.RemoveMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCOWHeapConcurrent(t *testing.T) {
	h := NewCOWHeap(intLess)
	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Insert(g*perG + i)
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", h.Len(), goroutines*perG)
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	wg = sync.WaitGroup{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := h.RemoveMin()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d removed twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Fatalf("drained %d unique values, want %d", len(seen), goroutines*perG)
	}
}
