package conc

import (
	"sync"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty should miss")
	}
	for i := 1; i <= 3; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	got := q.Drain()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("Drain = %v", got)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty should miss")
	}
}

func TestQueueLazyDeletion(t *testing.T) {
	q := NewQueue[int]()
	it1 := q.Enqueue(1)
	q.Enqueue(2)
	it1.Delete()
	q.NoteDeleted()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 2 {
		t.Fatalf("Peek = %d,%v want 2 (deleted head skipped)", v, ok)
	}
	// Deleting a middle element.
	q2 := NewQueue[int]()
	q2.Enqueue(1)
	mid := q2.Enqueue(2)
	q2.Enqueue(3)
	mid.Delete()
	q2.NoteDeleted()
	got := q2.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Drain = %v, want [1 3]", got)
	}
}

func TestQueuePushFrontInverse(t *testing.T) {
	q := NewQueue[int]()
	q.Enqueue(1)
	q.Enqueue(2)
	it, ok := q.Dequeue()
	if !ok || it.Value != 1 {
		t.Fatalf("Dequeue = %v,%v", it, ok)
	}
	q.PushFront(it)
	got := q.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Drain after PushFront = %v, want [1 2]", got)
	}
	// PushFront into an empty queue.
	q3 := NewQueue[int]()
	it3 := q3.Enqueue(7)
	it3b, _ := q3.Dequeue()
	if it3b != it3 {
		t.Fatal("dequeued wrapper mismatch")
	}
	q3.PushFront(it3b)
	if v, ok := q3.Peek(); !ok || v != 7 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := NewQueue[int]()
	const producers = 4
	const perP = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue(p*perP + i)
			}
		}(p)
	}
	wg.Wait()
	if q.Len() != producers*perP {
		t.Fatalf("Len = %d, want %d", q.Len(), producers*perP)
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1
			_ = prev
			for {
				it, ok := q.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				if seen[it.Value] {
					t.Errorf("value %d dequeued twice", it.Value)
				}
				seen[it.Value] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perP {
		t.Fatalf("drained %d unique, want %d", len(seen), producers*perP)
	}
}
