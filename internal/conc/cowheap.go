package conc

import (
	"sync/atomic"
)

// COWHeap is a thread-safe priority queue with constant-time snapshots,
// built from a persistent (immutable) leftist heap published through an
// atomic root pointer. Updates build a new version sharing structure with
// the old one and install it with compare-and-swap; Snapshot simply loads
// the current version.
//
// The paper notes that no concurrent heaps with efficient snapshots were
// publicly available, so ScalaProust "contains an experimental
// implementation that uses copy-on-write semantics" — this is the Go
// equivalent, used as the base structure of the lazy Proustian priority
// queue.
type COWHeap[V any] struct {
	less Less[V]
	root atomic.Pointer[heapVersion[V]]
}

type heapVersion[V any] struct {
	node *heapNode[V]
	size int
}

type heapNode[V any] struct {
	value V
	rank  int
	left  *heapNode[V]
	right *heapNode[V]
}

// NewCOWHeap creates an empty heap ordered by less.
func NewCOWHeap[V any](less Less[V]) *COWHeap[V] {
	h := &COWHeap[V]{less: less}
	h.root.Store(&heapVersion[V]{})
	return h
}

// Insert adds v.
func (h *COWHeap[V]) Insert(v V) {
	n := &heapNode[V]{value: v, rank: 1}
	for {
		cur := h.root.Load()
		next := &heapVersion[V]{node: mergeHeap(h.less, cur.node, n), size: cur.size + 1}
		if h.root.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Min returns the smallest value without removing it.
func (h *COWHeap[V]) Min() (V, bool) {
	cur := h.root.Load()
	if cur.node == nil {
		var zero V
		return zero, false
	}
	return cur.node.value, true
}

// RemoveMin removes and returns the smallest value.
func (h *COWHeap[V]) RemoveMin() (V, bool) {
	for {
		cur := h.root.Load()
		if cur.node == nil {
			var zero V
			return zero, false
		}
		next := &heapVersion[V]{
			node: mergeHeap(h.less, cur.node.left, cur.node.right),
			size: cur.size - 1,
		}
		if h.root.CompareAndSwap(cur, next) {
			return cur.node.value, true
		}
	}
}

// Len returns the current size.
func (h *COWHeap[V]) Len() int {
	return h.root.Load().size
}

// Contains reports whether some value equals v under eq (O(n) walk of the
// current version).
func (h *COWHeap[V]) Contains(v V, eq func(a, b V) bool) bool {
	return heapContains(h.root.Load().node, v, eq)
}

// Snapshot returns an O(1) snapshot supporting single-owner mutation. The
// snapshot shares structure with the heap but never affects it.
func (h *COWHeap[V]) Snapshot() *HeapSnapshot[V] {
	cur := h.root.Load()
	return &HeapSnapshot[V]{less: h.less, node: cur.node, size: cur.size}
}

// HeapSnapshot is a mutable single-owner view over a persistent heap
// version. It is not safe for concurrent use; Proust uses one per
// transaction as the shadow copy.
type HeapSnapshot[V any] struct {
	less Less[V]
	node *heapNode[V]
	size int
}

// Insert adds v to the snapshot.
func (s *HeapSnapshot[V]) Insert(v V) {
	s.node = mergeHeap(s.less, s.node, &heapNode[V]{value: v, rank: 1})
	s.size++
}

// Min returns the smallest value in the snapshot.
func (s *HeapSnapshot[V]) Min() (V, bool) {
	if s.node == nil {
		var zero V
		return zero, false
	}
	return s.node.value, true
}

// RemoveMin removes and returns the smallest value in the snapshot.
func (s *HeapSnapshot[V]) RemoveMin() (V, bool) {
	if s.node == nil {
		var zero V
		return zero, false
	}
	v := s.node.value
	s.node = mergeHeap(s.less, s.node.left, s.node.right)
	s.size--
	return v, true
}

// Len returns the snapshot size.
func (s *HeapSnapshot[V]) Len() int { return s.size }

// Contains reports whether some value equals v under eq.
func (s *HeapSnapshot[V]) Contains(v V, eq func(a, b V) bool) bool {
	return heapContains(s.node, v, eq)
}

// mergeHeap merges two persistent leftist heaps without mutating either.
func mergeHeap[V any](less Less[V], a, b *heapNode[V]) *heapNode[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if less(b.value, a.value) {
		a, b = b, a
	}
	merged := mergeHeap(less, a.right, b)
	left, right := a.left, merged
	if heapRank(left) < heapRank(right) {
		left, right = right, left
	}
	return &heapNode[V]{
		value: a.value,
		rank:  heapRank(right) + 1,
		left:  left,
		right: right,
	}
}

func heapRank[V any](n *heapNode[V]) int {
	if n == nil {
		return 0
	}
	return n.rank
}

func heapContains[V any](n *heapNode[V], v V, eq func(a, b V) bool) bool {
	if n == nil {
		return false
	}
	if eq(n.value, v) {
		return true
	}
	return heapContains(n.left, v, eq) || heapContains(n.right, v, eq)
}
