package conc

import "sync"

// epochpool.go generalizes the Ctrie's allocator-cache pattern (ctriepool.go)
// into an exported, type-parameterized facility: an EpochPool[T] is one
// reclamation domain (epoch.go) plus a cache of per-participant handles, each
// carrying the participant's epoch slot, three rotating retire bins and a
// typed freelist that allocation is served from. Callers outside this package
// (the STM's multi-version reference histories, future backing structures)
// use it to pool nodes that lock-free readers may still be traversing after
// displacement:
//
//	h := pool.Get()
//	h.Pin()                    // readers: pin around every traversal
//	... traverse / h.Alloc() / h.Retire(displaced) ...
//	h.Unpin()
//	pool.Put(h)
//
// The contract mirrors ctriepool.go exactly: Retire a node only after it has
// been unlinked (unreachable to new readers), overwrite every field of an
// Alloc'd node before publishing it (freelist nodes carry stale contents),
// and Recycle never-published nodes directly. A retired node returns to the
// freelist once the global epoch has advanced ebrGrace times past its retire
// bin's tag — by then every pinned section that could have observed it has
// ended.

// epAdvanceEvery is the pin cadence at which a handle volunteers to advance
// the epoch and drain its expired bins (same cadence as the Ctrie pool).
const epAdvanceEvery = 32

// epBin is one epoch residue class of retired nodes.
type epBin[T any] struct {
	epoch uint64
	items []*T
}

// EpochPool is one reclamation domain plus its handle cache. Structures that
// share retired memory must share one pool; independent structures should use
// independent pools so one structure's pinned readers do not delay another's
// reclamation.
type EpochPool[T any] struct {
	ebr     *ebr
	cap     int
	reset   func(*T)
	handles sync.Pool
}

// NewEpochPool creates a pool whose per-handle freelist keeps at most
// capPerHandle nodes (beyond that, recycled nodes are dropped to the GC).
// reset, when non-nil, runs on every node entering the freelist — after its
// grace period, so no reader can still observe the node — and should clear
// pointer fields so freelist residency does not pin displaced memory.
func NewEpochPool[T any](capPerHandle int, reset func(*T)) *EpochPool[T] {
	if capPerHandle <= 0 {
		capPerHandle = 256
	}
	p := &EpochPool[T]{ebr: newEBR(), cap: capPerHandle, reset: reset}
	p.handles.New = func() any {
		return &EpochHandle[T]{pool: p, slot: p.ebr.register()}
	}
	return p
}

// Get borrows a handle. Handles are recycled through a sync.Pool, so the
// number of registered epoch slots is bounded by the peak number of
// concurrent participants.
func (p *EpochPool[T]) Get() *EpochHandle[T] {
	return p.handles.Get().(*EpochHandle[T])
}

// Put returns a handle. The caller must be unpinned.
func (p *EpochPool[T]) Put(h *EpochHandle[T]) {
	p.handles.Put(h)
}

// Synchronize blocks until a full grace period has elapsed: every pinned
// section in flight when it was called has ended. The caller must not be
// pinned. Intended for tests and teardown paths.
func (p *EpochPool[T]) Synchronize() {
	p.ebr.synchronize()
}

// EpochHandle is one participant's view of an EpochPool.
type EpochHandle[T any] struct {
	pool *EpochPool[T]
	slot *ebrSlot
	ops  uint64

	bins [3]epBin[T]
	free []*T
}

// Pin announces the participant as active: nodes reachable at any point while
// pinned will not be reused until after Unpin. Periodically volunteers to
// advance the epoch and drain the handle's expired bins.
func (h *EpochHandle[T]) Pin() {
	h.slot.pin(&h.pool.ebr.global)
	h.ops++
	if h.ops%epAdvanceEvery == 0 {
		h.pool.ebr.tryAdvance()
		h.drainExpired()
	}
}

// Unpin ends the pinned section.
func (h *EpochHandle[T]) Unpin() {
	h.slot.unpin()
}

// Alloc returns a node from the freelist, or a fresh zero node when the
// freelist is empty. Freelist nodes carry stale field values; the caller must
// overwrite every field before publication.
func (h *EpochHandle[T]) Alloc() *T {
	if n := len(h.free); n > 0 {
		x := h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		return x
	}
	return new(T)
}

// Retire hands an unlinked node to the current epoch's bin; it returns to the
// freelist once the epoch has advanced ebrGrace times past the bin's tag.
func (h *EpochHandle[T]) Retire(x *T) {
	b := h.bin()
	b.items = append(b.items, x)
}

// Recycle returns a never-published node (e.g. a losing CAS copy) straight to
// the freelist, skipping the grace period.
func (h *EpochHandle[T]) Recycle(x *T) {
	if len(h.free) >= h.pool.cap {
		return
	}
	if h.pool.reset != nil {
		h.pool.reset(x)
	}
	h.free = append(h.free, x)
}

// bin returns the retire bin for the current epoch, draining the residue
// class first if it still holds a fully-aged previous cohort (tags in one
// class differ by a multiple of 3 ≥ ebrGrace+1, so the old cohort is safe).
func (h *EpochHandle[T]) bin() *epBin[T] {
	e := h.pool.ebr.global.Load()
	b := &h.bins[e%3]
	if b.epoch != e {
		h.drainBin(b)
		b.epoch = e
	}
	return b
}

// drainExpired moves every fully-aged bin to the freelist.
func (h *EpochHandle[T]) drainExpired() {
	g := h.pool.ebr.global.Load()
	for i := range h.bins {
		b := &h.bins[i]
		if b.epoch+ebrGrace <= g {
			h.drainBin(b)
		}
	}
}

func (h *EpochHandle[T]) drainBin(b *epBin[T]) {
	for i, x := range b.items {
		h.Recycle(x)
		b.items[i] = nil
	}
	b.items = b.items[:0]
}
