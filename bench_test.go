// Package proust_test hosts the repository-level benchmarks that regenerate
// the paper's evaluation as testing.B benchmarks: one benchmark family per
// Figure 4 series (per system, swept over o and u), plus the
// memoizing/log-combining ablation (Figure 4, bottom row) and the
// design-choice ablations called out in DESIGN.md.
//
// The full parameter grid (t up to 32, 10^6 ops, 10+10 repetitions) is
// produced by cmd/proust-bench; these benchmarks cover the same code paths
// at testing.B scale so `go test -bench` tracks regressions.
package proust_test

import (
	"fmt"
	"testing"

	"proust/internal/bench"
	"proust/internal/conc"
	"proust/internal/core"
	"proust/internal/stm"
)

// benchTxn runs one benchmark: b.N transactions of o operations with write
// fraction u against a fresh system.
func benchTxn(b *testing.B, factory bench.Factory, o int, u float64) {
	b.Helper()
	sys := factory.New()
	w := bench.Workload{
		Threads:       1,
		OpsPerTxn:     o,
		WriteFraction: u,
		KeyRange:      bench.DefaultKeyRange,
		TotalOps:      o, // per txn
		Seed:          42,
	}
	if err := bench.Prepopulate(sys, w.KeyRange); err != nil {
		b.Fatalf("prepopulate: %v", err)
	}
	ops := make([]bench.Op, o)
	r := bench.NewWorkloadRNG(w.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = bench.GenOp(r, w)
		}
		err := sys.STM.Atomically(func(tx *stm.Txn) error {
			for _, op := range ops {
				switch op.Kind {
				case bench.OpGet:
					sys.Map.Get(tx, op.Key)
				case bench.OpPut:
					sys.Map.Put(tx, op.Key, op.Val)
				case bench.OpRemove:
					sys.Map.Remove(tx, op.Key)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatalf("txn: %v", err)
		}
	}
	b.StopTimer()
	st := sys.STM.Stats()
	if st.Commits+st.Aborts > 0 {
		b.ReportMetric(float64(st.Aborts)/float64(st.Commits+st.Aborts), "aborts/txn")
	}
	b.ReportMetric(float64(o), "ops/txn")
}

// BenchmarkFigure4 regenerates the main grid: every system × o × u.
func BenchmarkFigure4(b *testing.B) {
	for _, f := range bench.Factories() {
		f := f
		os := []int{1, 16, 256}
		if f.OnlyO1 {
			os = []int{1}
		}
		for _, o := range os {
			for _, u := range []float64{0, 0.5, 1} {
				b.Run(fmt.Sprintf("%s/o=%d/u=%.2f", f.Name, o, u), func(b *testing.B) {
					benchTxn(b, f, o, u)
				})
			}
		}
	}
}

// BenchmarkFigure4Memo regenerates the bottom row: memoizing shadow copies
// with and without log combining, at large o where combining matters.
func BenchmarkFigure4Memo(b *testing.B) {
	for _, name := range []string{"proust-lazy-memo", "proust-lazy-memo-combining"} {
		f, ok := bench.FactoryByName(name)
		if !ok {
			b.Fatalf("factory %q missing", name)
		}
		for _, o := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/o=%d/u=1.00", name, o), func(b *testing.B) {
				benchTxn(b, f, o, 1)
			})
		}
	}
}

// BenchmarkAblationMemSize sweeps the conflict-abstraction table size M
// (the paper: "a parameter to be tuned later"; striping trades memory for
// false conflicts).
func BenchmarkAblationMemSize(b *testing.B) {
	for _, m := range []int{16, 128, 1024} {
		m := m
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			s := stm.New(stm.WithPolicy(stm.LazyLazy))
			lap := core.NewOptimisticLAP(s, func(k int) uint64 { return conc.IntHasher(k) }, m)
			txm := core.NewLazyMemoMap[int, int](s, lap, conc.IntHasher, true)
			sys := bench.System{Name: "memsize", STM: s, Map: txm}
			benchSystem(b, sys, 16, 0.5)
		})
	}
}

// BenchmarkAblationDetectionPolicy runs the same lazy/optimistic map on all
// three STM detection policies (Figure 1, right table).
func BenchmarkAblationDetectionPolicy(b *testing.B) {
	for _, p := range []stm.DetectionPolicy{stm.LazyLazy, stm.MixedEagerWWLazyRW, stm.EagerEager} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			s := stm.New(stm.WithPolicy(p))
			lap := core.NewOptimisticLAP(s, func(k int) uint64 { return conc.IntHasher(k) }, 1024)
			txm := core.NewLazyMemoMap[int, int](s, lap, conc.IntHasher, true)
			benchSystem(b, bench.System{Name: "policy", STM: s, Map: txm}, 16, 0.5)
		})
	}
}

// BenchmarkAblationContentionManager compares the contention managers on a
// high-conflict workload (tiny key range).
func BenchmarkAblationContentionManager(b *testing.B) {
	for _, cm := range []stm.ContentionManager{stm.Backoff{}, stm.Timestamp{}} {
		cm := cm
		b.Run(cm.Name(), func(b *testing.B) {
			s := stm.New(stm.WithPolicy(stm.MixedEagerWWLazyRW), stm.WithContentionManager(cm))
			lap := core.NewOptimisticLAP(s, func(k int) uint64 { return conc.IntHasher(k) }, 64)
			txm := core.NewMap[int, int](s, lap, conc.IntHasher)
			sys := bench.System{Name: "cm", STM: s, Map: txm}
			if err := bench.Prepopulate(sys, 32); err != nil {
				b.Fatalf("prepopulate: %v", err)
			}
			w := bench.Workload{Threads: 1, OpsPerTxn: 4, WriteFraction: 0.75, KeyRange: 32, Seed: 7}
			ops := make([]bench.Op, w.OpsPerTxn)
			r := bench.NewWorkloadRNG(w.Seed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range ops {
					ops[j] = bench.GenOp(r, w)
				}
				if err := sys.STM.Atomically(func(tx *stm.Txn) error {
					for _, op := range ops {
						switch op.Kind {
						case bench.OpGet:
							sys.Map.Get(tx, op.Key)
						case bench.OpPut:
							sys.Map.Put(tx, op.Key, op.Val)
						case bench.OpRemove:
							sys.Map.Remove(tx, op.Key)
						}
					}
					return nil
				}); err != nil {
					b.Fatalf("txn: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblationSizeRef isolates the cost of the reified committedSize
// reference (paper Listing 2): a replace-only workload never changes the
// size and skips the size reference entirely; a mixed put/remove workload
// writes it on every presence change, making it a shared hotspot.
func BenchmarkAblationSizeRef(b *testing.B) {
	f, ok := bench.FactoryByName("proust-lazy-memo-combining")
	if !ok {
		b.Fatal("factory missing")
	}
	for _, replaceOnly := range []bool{false, true} {
		replaceOnly := replaceOnly
		name := "mixed-writes"
		if replaceOnly {
			name = "replace-only"
		}
		b.Run(name, func(b *testing.B) {
			sys := f.New()
			w := bench.Workload{
				Threads: 1, OpsPerTxn: 16, WriteFraction: 1,
				KeyRange: bench.DefaultKeyRange, Seed: 42, ReplaceOnly: replaceOnly,
			}
			if err := bench.Prepopulate(sys, w.KeyRange); err != nil {
				b.Fatalf("prepopulate: %v", err)
			}
			ops := make([]bench.Op, w.OpsPerTxn)
			r := bench.NewWorkloadRNG(w.Seed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range ops {
					ops[j] = bench.GenOp(r, w)
				}
				if err := sys.STM.Atomically(func(tx *stm.Txn) error {
					for _, op := range ops {
						switch op.Kind {
						case bench.OpGet:
							sys.Map.Get(tx, op.Key)
						case bench.OpPut:
							sys.Map.Put(tx, op.Key, op.Val)
						case bench.OpRemove:
							sys.Map.Remove(tx, op.Key)
						}
					}
					return nil
				}); err != nil {
					b.Fatalf("txn: %v", err)
				}
			}
		})
	}
}

// BenchmarkPQueue compares the eager (PriorityBlockingQueue + lazy
// deletion) and lazy (copy-on-write heap + snapshot replay) Proustian
// priority queues.
func BenchmarkPQueue(b *testing.B) {
	intLess := func(a, c int) bool { return a < c }
	intEq := func(a, c int) bool { return a == c }
	build := map[string]func(s *stm.STM) core.TxPQueue[int]{
		"eager": func(s *stm.STM) core.TxPQueue[int] {
			return core.NewPQueue[int](s, core.NewOptimisticLAP(s, core.PQStateHash, 4), intLess, intEq)
		},
		"lazy": func(s *stm.STM) core.TxPQueue[int] {
			return core.NewLazyPQueue[int](s, core.NewOptimisticLAP(s, core.PQStateHash, 4), intLess, intEq)
		},
	}
	for name, mk := range build {
		mk := mk
		b.Run(name, func(b *testing.B) {
			s := stm.New(stm.WithPolicy(stm.LazyLazy))
			q := mk(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Atomically(func(tx *stm.Txn) error {
					q.Insert(tx, i%1000)
					if i%2 == 1 {
						q.RemoveMin(tx)
						q.RemoveMin(tx)
					}
					return nil
				}); err != nil {
					b.Fatalf("txn: %v", err)
				}
			}
		})
	}
}

func benchSystem(b *testing.B, sys bench.System, o int, u float64) {
	b.Helper()
	if err := bench.Prepopulate(sys, bench.DefaultKeyRange); err != nil {
		b.Fatalf("prepopulate: %v", err)
	}
	w := bench.Workload{
		Threads: 1, OpsPerTxn: o, WriteFraction: u,
		KeyRange: bench.DefaultKeyRange, Seed: 42,
	}
	ops := make([]bench.Op, o)
	r := bench.NewWorkloadRNG(w.Seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = bench.GenOp(r, w)
		}
		if err := sys.STM.Atomically(func(tx *stm.Txn) error {
			for _, op := range ops {
				switch op.Kind {
				case bench.OpGet:
					sys.Map.Get(tx, op.Key)
				case bench.OpPut:
					sys.Map.Put(tx, op.Key, op.Val)
				case bench.OpRemove:
					sys.Map.Remove(tx, op.Key)
				}
			}
			return nil
		}); err != nil {
			b.Fatalf("txn: %v", err)
		}
	}
}
