module proust

go 1.22
