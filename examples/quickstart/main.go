// Quickstart: a transactional map in thirty lines.
//
// A Proustian map wraps a thread-safe concurrent hash trie with per-key
// conflict abstraction: transactions spanning several keys compose
// atomically, and transactions on distinct keys never conflict.
package main

import (
	"fmt"
	"log"

	"proust/internal/conc"
	"proust/internal/core"
	"proust/internal/stm"
)

func main() {
	s := stm.New()
	lap := core.NewOptimisticLAP(s, func(k string) uint64 { return conc.StringHasher(k) }, 256)
	m := core.NewLazySnapshotMap[string, int](s, lap, conc.StringHasher)

	// A multi-key transaction: all or nothing.
	err := s.Atomically(func(tx *stm.Txn) error {
		m.Put(tx, "apples", 3)
		m.Put(tx, "oranges", 5)
		total := 0
		for _, k := range []string{"apples", "oranges"} {
			v, _ := m.Get(tx, k)
			total += v
		}
		m.Put(tx, "total", total)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	_ = s.Atomically(func(tx *stm.Txn) error {
		total, _ := m.Get(tx, "total")
		fmt.Printf("total fruit: %d (map size %d)\n", total, m.Size(tx))
		return nil
	})
}
