// Bank: concurrent transfers over a Proustian map with an invariant audit.
//
// This is the classic STM motivation: accounts live in a transactional map;
// transfers move money between two random accounts atomically; a concurrent
// auditor repeatedly checks that the total balance is conserved *inside a
// transaction* — it must never observe a torn transfer, demonstrating
// opacity of the lazy/optimistic Proustian map on a fully lazy STM
// (Theorem 5.3). Because conflicts are per-account (per-key conflict
// abstraction), transfers between disjoint account pairs run in parallel.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"proust/internal/conc"
	"proust/internal/core"
	"proust/internal/stm"
)

const (
	accounts       = 64
	initialBalance = 1000
	workers        = 8
	duration       = 300 * time.Millisecond
)

func main() {
	s := stm.New(stm.WithPolicy(stm.LazyLazy))
	lap := core.NewOptimisticLAP(s, func(k int) uint64 { return conc.IntHasher(k) }, 256)
	bank := core.NewLazySnapshotMap[int, int](s, lap, conc.IntHasher)

	if err := s.Atomically(func(tx *stm.Txn) error {
		for a := 0; a < accounts; a++ {
			bank.Put(tx, a, initialBalance)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	var (
		transfers atomic.Int64
		audits    atomic.Int64
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := rng.Intn(100) + 1
				err := s.Atomically(func(tx *stm.Txn) error {
					fb, _ := bank.Get(tx, from)
					if fb < amount {
						return nil // insufficient funds; commit a no-op
					}
					tb, _ := bank.Get(tx, to)
					bank.Put(tx, from, fb-amount)
					bank.Put(tx, to, tb+amount)
					return nil
				})
				if err != nil {
					log.Printf("transfer: %v", err)
					return
				}
				transfers.Add(1)
			}
		}(int64(w))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var total int
			if err := s.Atomically(func(tx *stm.Txn) error {
				total = 0
				for a := 0; a < accounts; a++ {
					b, _ := bank.Get(tx, a)
					total += b
				}
				return nil
			}); err != nil {
				log.Printf("audit: %v", err)
				return
			}
			if total != accounts*initialBalance {
				log.Fatalf("INVARIANT VIOLATION: observed total %d, want %d",
					total, accounts*initialBalance)
			}
			audits.Add(1)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	st := s.Stats()
	fmt.Printf("bank: %d transfers, %d audits, every audit saw total=%d\n",
		transfers.Load(), audits.Load(), accounts*initialBalance)
	fmt.Printf("stm:  %d commits, %d aborts (%.1f%% abort rate)\n",
		st.Commits, st.Aborts, 100*float64(st.Aborts)/float64(st.Commits+st.Aborts))
}
