// Scheduler: a transactional job scheduler built on the Proustian priority
// queue (the paper's Figure 3 / Listing 3 data structure).
//
// Producers submit jobs in batches — a batch is one transaction, so either
// every job of the batch becomes visible or none does (some batches abort
// deliberately). Workers atomically claim the highest-priority job and
// record it in a transactional results map in the same transaction, so a
// job can never be both "queued" and "done", and no job is ever lost.
//
// The conflict abstraction keeps the queue concurrent: inserting a job with
// lower priority than the current head commutes with claiming the head, so
// producers and workers rarely conflict.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"proust/internal/conc"
	"proust/internal/core"
	"proust/internal/stm"
)

// Job is a schedulable unit; lower Priority runs earlier.
type Job struct {
	ID       int
	Priority int
}

func jobLess(a, b Job) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.ID < b.ID
}

func jobEq(a, b Job) bool { return a.ID == b.ID }

const (
	producers    = 3
	workers      = 4
	batchesPerP  = 40
	jobsPerBatch = 5
)

func main() {
	s := stm.New(stm.WithPolicy(stm.LazyLazy))
	queue := core.NewLazyPQueue[Job](s, core.NewOptimisticLAP(s, core.PQStateHash, 4), jobLess, jobEq)
	doneLAP := core.NewOptimisticLAP(s, func(k int) uint64 { return conc.IntHasher(k) }, 512)
	done := core.NewLazySnapshotMap[int, int](s, doneLAP, conc.IntHasher)

	var (
		wg        sync.WaitGroup
		submitted sync.Map
	)

	// Producers submit batches transactionally; ~1 in 5 batches aborts.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for b := 0; b < batchesPerP; b++ {
				ids := make([]Job, jobsPerBatch)
				for i := range ids {
					ids[i] = Job{
						ID:       p*batchesPerP*jobsPerBatch + b*jobsPerBatch + i,
						Priority: rng.Intn(100),
					}
				}
				abort := rng.Intn(5) == 0
				err := s.Atomically(func(tx *stm.Txn) error {
					for _, j := range ids {
						queue.Insert(tx, j)
					}
					if abort {
						return errAbortBatch
					}
					return nil
				})
				switch {
				case abort && err == errAbortBatch:
					// dropped atomically; none of the jobs exist
				case err != nil:
					log.Fatalf("producer: %v", err)
				default:
					for _, j := range ids {
						submitted.Store(j.ID, true)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	// Workers claim jobs until the queue drains.
	var claimed sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				var job Job
				var ok bool
				err := s.Atomically(func(tx *stm.Txn) error {
					job, ok = queue.RemoveMin(tx)
					if ok {
						done.Put(tx, job.ID, w)
					}
					return nil
				})
				if err != nil {
					log.Fatalf("worker: %v", err)
				}
				if !ok {
					return
				}
				if _, dup := claimed.LoadOrStore(job.ID, w); dup {
					log.Fatalf("job %d claimed twice", job.ID)
				}
			}
		}(w)
	}
	wg.Wait()

	// Audit: every committed job was claimed exactly once, none invented.
	var want, got int
	submitted.Range(func(k, _ any) bool {
		want++
		if _, ok := claimed.Load(k); !ok {
			log.Fatalf("job %v lost", k)
		}
		return true
	})
	claimed.Range(func(k, _ any) bool {
		got++
		if _, ok := submitted.Load(k); !ok {
			log.Fatalf("job %v came from an aborted batch", k)
		}
		return true
	})
	var size int
	_ = s.Atomically(func(tx *stm.Txn) error {
		size = done.Size(tx)
		return nil
	})
	fmt.Printf("scheduler: %d jobs submitted in committed batches, %d claimed, results map size %d\n",
		want, got, size)
	if want != got || size != got {
		log.Fatal("conservation violated")
	}
	st := s.Stats()
	fmt.Printf("stm: %d commits, %d aborts\n", st.Commits, st.Aborts)
	_ = time.Now()
}

var errAbortBatch = fmt.Errorf("deliberate batch abort")
