// Designspace: a tour of the Proust design space on one workload.
//
// The same transfer workload runs over the same abstract data type — a
// transactional map — assembled at every point of the paper's 2×2 design
// space (optimistic/pessimistic lock-allocator policy × eager/lazy update
// strategy), on the matching STM detection policies, and reports timing,
// commits and aborts for each. This is Figure 1 as a runnable program:
// which combinations exist, which STM each needs, and how they behave.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"proust/internal/conc"
	"proust/internal/core"
	"proust/internal/stm"
)

type combo struct {
	name       string
	optimistic bool
	strat      core.UpdateStrategy
	backend    string // STM backend registry name
}

func main() {
	// STM backends are selected by registry name; the registry also carries
	// the detection policy that core.CheckCombo arbitrates against.
	fmt.Println("registered STM backends:")
	for _, bf := range stm.Backends() {
		fmt.Printf("  %-8s %-14s %s\n", bf.Name, "("+bf.Policy.String()+")", bf.Doc)
	}
	fmt.Println()

	combos := []combo{
		{"pessimistic+eager (boosting)      on ccstm  ", false, core.Eager, "ccstm"},
		{"pessimistic+lazy                  on ccstm  ", false, core.Lazy, "ccstm"},
		{"optimistic+eager  (Thm 5.2)       on eager  ", true, core.Eager, "eager"},
		{"optimistic+lazy   (predication-ish) on tl2  ", true, core.Lazy, "tl2"},
		{"optimistic+lazy                   on ccstm  ", true, core.Lazy, "ccstm"},
		{"optimistic+lazy                   on norec  ", true, core.Lazy, "norec"},
	}

	fmt.Println("design-space tour: 8 goroutines × 2000 transfer txns over 64 keys")
	fmt.Printf("%-52s %10s %9s %9s %9s\n", "combination", "time", "commits", "aborts", "abort%")
	for _, c := range combos {
		bf, ok := stm.BackendByName(c.backend)
		if !ok {
			fmt.Printf("%-52s SKIPPED: unknown backend %q\n", c.name, c.backend)
			continue
		}
		if err := core.CheckCombo(c.optimistic, c.strat, bf.Policy); err != nil {
			fmt.Printf("%-52s SKIPPED: %v\n", c.name, err)
			continue
		}
		elapsed, st, err := runCombo(c)
		if err != nil {
			fmt.Printf("%-52s ERROR: %v\n", c.name, err)
			continue
		}
		rate := 0.0
		if st.Commits+st.Aborts > 0 {
			rate = 100 * float64(st.Aborts) / float64(st.Commits+st.Aborts)
		}
		fmt.Printf("%-52s %10s %9d %9d %8.1f%%\n", c.name, elapsed.Round(time.Millisecond), st.Commits, st.Aborts, rate)
	}

	// And one combination that CheckCombo rejects, to show the guard rail.
	if err := core.CheckCombo(true, core.Eager, stm.LazyLazy); err == nil {
		fmt.Println("BUG: eager+optimistic on lazy-lazy should be rejected")
	} else if errors.Is(err, core.ErrOpacityNotGuaranteed) {
		fmt.Println("\noptimistic+eager on lazy-lazy correctly rejected:")
		fmt.Println("   ", err)
	}
}

func runCombo(c combo) (time.Duration, stm.StatsSnapshot, error) {
	s := stm.New(stm.WithBackend(c.backend))
	hash := func(k int) uint64 { return conc.IntHasher(k) }
	var lap core.LockAllocatorPolicy[int]
	if c.optimistic {
		lap = core.NewOptimisticLAP(s, hash, 256)
	} else {
		lap = core.NewPessimisticLAP(hash, 256, core.DefaultLockTimeout)
	}
	var m core.TxMap[int, int]
	if c.strat == core.Eager {
		m = core.NewMap[int, int](s, lap, conc.IntHasher)
	} else {
		m = core.NewLazySnapshotMap[int, int](s, lap, conc.IntHasher)
	}

	const keys = 64
	if err := s.Atomically(func(tx *stm.Txn) error {
		for k := 0; k < keys; k++ {
			m.Put(tx, k, 100)
		}
		return nil
	}); err != nil {
		return 0, stm.StatsSnapshot{}, err
	}
	s.ResetStats()

	var (
		wg     sync.WaitGroup
		outErr error
		mu     sync.Mutex
	)
	start := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				from, to := rng.Intn(keys), rng.Intn(keys)
				if from == to {
					continue
				}
				if err := s.Atomically(func(tx *stm.Txn) error {
					fv, _ := m.Get(tx, from)
					tv, _ := m.Get(tx, to)
					m.Put(tx, from, fv-1)
					m.Put(tx, to, tv+1)
					return nil
				}); err != nil {
					mu.Lock()
					if outErr == nil {
						outErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	elapsed := time.Since(start)
	if outErr != nil {
		return 0, stm.StatsSnapshot{}, outErr
	}

	// Conservation audit.
	var total int
	if err := s.Atomically(func(tx *stm.Txn) error {
		total = 0
		for k := 0; k < keys; k++ {
			v, _ := m.Get(tx, k)
			total += v
		}
		return nil
	}); err != nil {
		return 0, stm.StatsSnapshot{}, err
	}
	if total != keys*100 {
		return 0, stm.StatsSnapshot{}, fmt.Errorf("conservation violated: total %d", total)
	}
	return elapsed, s.Stats(), nil
}
