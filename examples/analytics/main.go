// Analytics: transactional range queries over an ordered Proustian map.
//
// A time-series of measurements is keyed by timestamp in an OrderedMap with
// a *range* conflict abstraction — the paper's first example of semantic
// commutativity: "queries and updates to non-intersecting key ranges
// commute". Writers append measurements in one window while analysts
// repeatedly take atomic window aggregates in another; the disjoint-window
// traffic never conflicts, and each aggregate is a consistent cut (writers
// insert value pairs that must always sum to zero within a window).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"proust/internal/core"
	"proust/internal/stm"
)

const (
	indexBits = 16 // timestamps 0..65535
	stripes   = 64
	windowLo  = 0
	windowHi  = 1<<15 - 1 // analysts read the lower half
	writerLo  = 1 << 15   // writers append to the upper half
	duration  = 250 * time.Millisecond
)

func main() {
	s := stm.New(stm.WithPolicy(stm.MixedEagerWWLazyRW))
	lap := core.NewOptimisticLAP(s, func(st int) uint64 { return uint64(st) * 0x9e3779b97f4a7c15 }, 128)
	series := core.NewOrderedMap[int, int](s, lap,
		func(a, b int) int { return a - b },
		func(k int) uint64 { return uint64(k) },
		indexBits, stripes)

	// Seed the analyst window with balanced pairs: (t, +v) and (t+1, -v).
	if err := s.Atomically(func(tx *stm.Txn) error {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 100; i++ {
			t := windowLo + i*64
			v := rng.Intn(1000)
			series.Put(tx, t, v)
			series.Put(tx, t+1, -v)
			return nil
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		inserted  atomic.Int64
		queries   atomic.Int64
		rebalance atomic.Int64
	)

	// Appenders write balanced pairs into the writer window: disjoint from
	// the analysts' range, so no conflicts with them.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t := writerLo + rng.Intn(1<<14)*2
				v := rng.Intn(1000)
				if err := s.Atomically(func(tx *stm.Txn) error {
					series.Put(tx, t, v)
					series.Put(tx, t+1, -v)
					return nil
				}); err != nil {
					log.Printf("appender: %v", err)
					return
				}
				inserted.Add(2)
			}
		}(int64(w))
	}

	// A rebalancer mutates pairs inside the analyst window, so analyst
	// queries see real concurrent updates to their range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			t := windowLo + rng.Intn(100)*64
			v := rng.Intn(1000)
			if err := s.Atomically(func(tx *stm.Txn) error {
				if series.Contains(tx, t) {
					series.Put(tx, t, v)
					series.Put(tx, t+1, -v)
				}
				return nil
			}); err != nil {
				log.Printf("rebalancer: %v", err)
				return
			}
			rebalance.Add(1)
		}
	}()

	// Analysts take atomic window aggregates: the sum of the window is
	// invariantly zero (every write is a balanced pair).
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int
				if err := s.Atomically(func(tx *stm.Txn) error {
					sum = 0
					for _, e := range series.RangeQuery(tx, windowLo, windowHi) {
						sum += e.Val
					}
					return nil
				}); err != nil {
					log.Printf("analyst: %v", err)
					return
				}
				if sum != 0 {
					log.Fatalf("TORN RANGE QUERY: window sum %d, want 0", sum)
				}
				queries.Add(1)
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	st := s.Stats()
	fmt.Printf("analytics: %d points appended, %d rebalances, %d atomic window aggregates (all balanced)\n",
		inserted.Load(), rebalance.Load(), queries.Load())
	fmt.Printf("stm: %d commits, %d aborts\n", st.Commits, st.Aborts)
}
